"""Protocol-constant lint (rule family 4): single-definition wire constants.

The serving daemon, the remote execution backend and the bench schema all
interoperate across process (and potentially host) boundaries.  Their wire
constants therefore have exactly one home each:

* ``PROTOCOL_VERSION`` and ``MAX_FRAME_BYTES`` — ``runtime/framing.py``
* the frame-header layout ``">Q"`` — ``runtime/framing.py``
* ``SCHEMA_VERSION`` — ``bench/perf.py``

Every other module must *import* them.  A second literal definition would
let the two sides of a connection (or a result written last month and a
reader today) silently disagree about the protocol they speak — the exact
class of skew this lint makes structurally impossible.
"""

from __future__ import annotations

import ast

from .findings import Finding
from .tree import ANALYSIS_ROOT, SourceTree

RULE = "protocol-constant"

#: constant name -> (canonical repo path, canonical module tail for imports)
CANONICAL = {
    "PROTOCOL_VERSION": ("src/repro/runtime/framing.py", "framing"),
    "MAX_FRAME_BYTES": ("src/repro/runtime/framing.py", "framing"),
    "SCHEMA_VERSION": ("src/repro/bench/perf.py", "perf"),
}

FRAMING_PATH = "src/repro/runtime/framing.py"

#: The length-prefix header layout.  Appearing anywhere else means a second
#: hand-rolled framing implementation.
FRAME_HEADER_FORMAT = ">Q"


def _fail(path: str, line: int, message: str) -> Finding:
    return Finding(RULE, path, line, message)


def _is_int_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return True
    if isinstance(node, ast.BinOp):
        return _is_int_literal(node.left) and _is_int_literal(node.right)
    return False


def check(tree: SourceTree) -> "list[Finding]":
    findings: list[Finding] = []
    defined_at_home: dict[str, bool] = {name: False for name in CANONICAL}

    for path in tree.python_files():
        if path.startswith(ANALYSIS_ROOT):
            continue  # the lint's own pattern tables are not protocol users
        module = tree.parse(path)
        for node in ast.walk(module):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Name) or target.id not in CANONICAL:
                        continue
                    home, _module_tail = CANONICAL[target.id]
                    if path == home:
                        if _is_int_literal(node.value):
                            defined_at_home[target.id] = True
                        else:
                            findings.append(
                                _fail(
                                    path,
                                    node.lineno,
                                    f"{target.id} must be a literal integer in "
                                    "its canonical module",
                                )
                            )
                    else:
                        findings.append(
                            _fail(
                                path,
                                node.lineno,
                                f"{target.id} redefined outside its canonical "
                                f"home {home} — import it instead",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                module_tail = (node.module or "").rsplit(".", 1)[-1]
                for alias in node.names:
                    if alias.name in CANONICAL:
                        _home, expected_tail = CANONICAL[alias.name]
                        if module_tail != expected_tail:
                            findings.append(
                                _fail(
                                    path,
                                    node.lineno,
                                    f"{alias.name} imported from "
                                    f"{node.module or '.'} instead of its "
                                    f"canonical module ({expected_tail})",
                                )
                            )
            elif (
                isinstance(node, ast.Constant)
                and node.value == FRAME_HEADER_FORMAT
                and path != FRAMING_PATH
            ):
                findings.append(
                    _fail(
                        path,
                        node.lineno,
                        f"frame-header format {FRAME_HEADER_FORMAT!r} outside "
                        "runtime/framing.py — use read_frame/write_frame "
                        "instead of hand-rolling framing",
                    )
                )

    for name, seen in sorted(defined_at_home.items()):
        if not seen:
            home, _tail = CANONICAL[name]
            findings.append(
                _fail(
                    home,
                    0,
                    f"canonical definition of {name} not found in {home}",
                )
            )
    return findings
