"""Protocol-constant lint (rule family 4): single-definition wire constants.

The serving daemon, the remote execution backend and the bench schema all
interoperate across process (and potentially host) boundaries.  Their wire
constants therefore have exactly one home each:

* ``PROTOCOL_VERSION`` and ``MAX_FRAME_BYTES`` — ``runtime/framing.py``
* the liveness frame kinds ``PING`` / ``PONG`` / ``HEARTBEAT`` and the
  liveness timing constants ``HEARTBEAT_INTERVAL`` /
  ``LIVENESS_DEADLINE`` — ``runtime/framing.py`` (shared by
  ``repro-worker``, the cluster scheduler and ``repro-serve``)
* the frame-header layout ``">Q"`` — ``runtime/framing.py``
* ``SCHEMA_VERSION`` — ``bench/perf.py``

Every other module must *import* them.  A second literal definition would
let the two sides of a connection (or a result written last month and a
reader today) silently disagree about the protocol they speak — the exact
class of skew this lint makes structurally impossible.  The liveness
timing pair is included because a driver enforcing a deadline its workers
never heard of is the same skew in the time domain: kill-happy drivers
against slow-heartbeat workers.
"""

from __future__ import annotations

import ast

from .findings import Finding
from .tree import ANALYSIS_ROOT, SourceTree

RULE = "protocol-constant"

#: constant name -> (canonical repo path, canonical module tail for imports,
#: required literal kind: "int", "number" or "str")
CANONICAL = {
    "PROTOCOL_VERSION": ("src/repro/runtime/framing.py", "framing", "int"),
    "MAX_FRAME_BYTES": ("src/repro/runtime/framing.py", "framing", "int"),
    "PING": ("src/repro/runtime/framing.py", "framing", "str"),
    "PONG": ("src/repro/runtime/framing.py", "framing", "str"),
    "HEARTBEAT": ("src/repro/runtime/framing.py", "framing", "str"),
    "HEARTBEAT_INTERVAL": ("src/repro/runtime/framing.py", "framing", "number"),
    "LIVENESS_DEADLINE": ("src/repro/runtime/framing.py", "framing", "number"),
    "SCHEMA_VERSION": ("src/repro/bench/perf.py", "perf", "int"),
}

FRAMING_PATH = "src/repro/runtime/framing.py"

#: The length-prefix header layout.  Appearing anywhere else means a second
#: hand-rolled framing implementation.
FRAME_HEADER_FORMAT = ">Q"


def _fail(path: str, line: int, message: str) -> Finding:
    return Finding(RULE, path, line, message)


def _is_literal(node: ast.expr, kind: str) -> bool:
    """Whether *node* is a literal of the required *kind*.

    ``int`` accepts integer literals and arithmetic over them (``1 << 30``);
    ``number`` additionally accepts float literals (liveness timings);
    ``str`` accepts exactly a string literal (frame kinds).
    """
    if kind == "str":
        return isinstance(node, ast.Constant) and isinstance(node.value, str)
    types = (int, float) if kind == "number" else int
    if isinstance(node, ast.Constant):
        # bool is an int subclass but never a sane protocol constant.
        return isinstance(node.value, types) and not isinstance(node.value, bool)
    if isinstance(node, ast.BinOp):
        return _is_literal(node.left, kind) and _is_literal(node.right, kind)
    return False


_KIND_LABEL = {
    "int": "literal integer",
    "number": "literal number",
    "str": "literal string",
}


def check(tree: SourceTree) -> "list[Finding]":
    findings: list[Finding] = []
    defined_at_home: dict[str, bool] = {name: False for name in CANONICAL}

    for path in tree.python_files():
        if path.startswith(ANALYSIS_ROOT):
            continue  # the lint's own pattern tables are not protocol users
        module = tree.parse(path)
        for node in ast.walk(module):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Name) or target.id not in CANONICAL:
                        continue
                    home, _module_tail, kind = CANONICAL[target.id]
                    if path == home:
                        if _is_literal(node.value, kind):
                            defined_at_home[target.id] = True
                        else:
                            findings.append(
                                _fail(
                                    path,
                                    node.lineno,
                                    f"{target.id} must be a {_KIND_LABEL[kind]} "
                                    "in its canonical module",
                                )
                            )
                    else:
                        findings.append(
                            _fail(
                                path,
                                node.lineno,
                                f"{target.id} redefined outside its canonical "
                                f"home {home} — import it instead",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                module_tail = (node.module or "").rsplit(".", 1)[-1]
                for alias in node.names:
                    if alias.name in CANONICAL:
                        _home, expected_tail, _kind = CANONICAL[alias.name]
                        if module_tail != expected_tail:
                            findings.append(
                                _fail(
                                    path,
                                    node.lineno,
                                    f"{alias.name} imported from "
                                    f"{node.module or '.'} instead of its "
                                    f"canonical module ({expected_tail})",
                                )
                            )
            elif (
                isinstance(node, ast.Constant)
                and node.value == FRAME_HEADER_FORMAT
                and path != FRAMING_PATH
            ):
                findings.append(
                    _fail(
                        path,
                        node.lineno,
                        f"frame-header format {FRAME_HEADER_FORMAT!r} outside "
                        "runtime/framing.py — use read_frame/write_frame "
                        "instead of hand-rolling framing",
                    )
                )

    for name, seen in sorted(defined_at_home.items()):
        if not seen:
            home, _tail, _kind = CANONICAL[name]
            findings.append(
                _fail(
                    home,
                    0,
                    f"canonical definition of {name} not found in {home}",
                )
            )
    return findings
