"""``repro-lint`` — static contract analysis for the three-kernel invariants.

Runs every rule family over the repository without executing a single
simulation step, applies inline pragmas and the checked-in allowlist, and
exits non-zero iff any *live* (unsuppressed) finding remains::

    repro-lint                      # text report, exit 1 on violations
    repro-lint --format json        # machine-readable (CI artifact)
    repro-lint --only determinism   # one rule family
    repro-lint --no-native          # skip the compiler-backed warning gate
    repro-lint --list-rules         # rule catalogue

See docs/ANALYSIS.md for the rule catalogue and the suppression grammar.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import counter_contract, determinism, hook_contract, native_gate
from . import protocol_constants
from .findings import ALLOWLIST_NAME, Allowlist, Finding, apply_suppressions, scan_pragmas
from .tree import SourceTree

#: Rule families in report order: family name -> (check, description).
FAMILIES = {
    "counter-contract": (
        counter_contract.check,
        "counter-name universe identical across scalar/reference/vector/native"
        " lanes, C slot enum and SimParams ABI vs ctypes, golden manifest",
    ),
    "determinism": (
        determinism.check,
        "global RNG streams, wall-clock reads, id()-keyed hashing, and"
        " unordered-set iteration reaching ordered consumers",
    ),
    "hook-contract": (
        hook_contract.check,
        "hook namespace partition, _HOOK_FLAGS hoisting table, class-level"
        " override discipline, supports_native defers to supports_vector",
    ),
    "protocol-constant": (
        protocol_constants.check,
        "PROTOCOL_VERSION / MAX_FRAME_BYTES / SCHEMA_VERSION defined once"
        " and imported everywhere else; no hand-rolled frame headers",
    ),
    "native-warnings": (
        native_gate.check,
        "_core.c compiles -Wall -Wextra -Werror clean (skipped without a"
        " C compiler; use --no-native to skip explicitly)",
    ),
}


def default_root() -> Path:
    """The repository root: nearest ancestor of this file with src/repro."""
    here = Path(__file__).resolve()
    for candidate in here.parents:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return Path.cwd()


def run_lint(
    root: Path,
    overlay: "dict[str, str] | None" = None,
    families: "tuple[str, ...] | None" = None,
    native: bool = True,
    allowlist: "Allowlist | None" = None,
) -> "list[Finding]":
    """Run the selected rule families and apply suppressions.

    Returns every finding, suppressed ones included (``suppressed=True``);
    callers decide what a failure is.  *overlay* maps repo-relative paths to
    replacement text, letting tests lint mutated sources in memory.
    """
    tree = SourceTree(root, overlay)
    selected = families if families is not None else tuple(FAMILIES)
    findings: list[Finding] = []
    for family in selected:
        if family == "native-warnings" and not native:
            continue
        check, _description = FAMILIES[family]
        findings.extend(check(tree))

    pragmas_by_path = {}
    for path in tree.python_files():
        pragmas = scan_pragmas(tree.read(path))
        pragmas_by_path[path] = pragmas
        for line in pragmas.malformed:
            findings.append(
                Finding(
                    "pragma-format",
                    path,
                    line,
                    "allow-pragma without a reason — write "
                    "`# repro: allow(rule): why`",
                )
            )

    if allowlist is None:
        allowlist = Allowlist.load(Path(root) / ALLOWLIST_NAME)
    for number, raw in allowlist.malformed:
        findings.append(
            Finding(
                "pragma-format",
                ALLOWLIST_NAME,
                number,
                f"malformed allowlist entry {raw.strip()!r} — expected "
                "`<rule> <path>[:<line>] <reason>`",
            )
        )
    apply_suppressions(findings, pragmas_by_path, allowlist)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


def _report_text(findings: "list[Finding]", out) -> None:
    live = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]
    for finding in live:
        print(f"{finding.location()}: {finding.rule}: {finding.message}", file=out)
    if live:
        print(file=out)
    print(
        f"repro-lint: {len(live)} violation(s), "
        f"{len(suppressed)} suppressed",
        file=out,
    )


def _report_json(findings: "list[Finding]", out) -> None:
    live = sum(1 for f in findings if not f.suppressed)
    payload = {
        "tool": "repro-lint",
        "live": live,
        "suppressed": len(findings) - live,
        "findings": [finding.as_dict() for finding in findings],
    }
    json.dump(payload, out, indent=2, sort_keys=True)
    out.write("\n")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static contract analysis for the repro three-kernel "
        "determinism invariants.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root to lint (default: auto-detected)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="FAMILY",
        choices=sorted(FAMILIES),
        help="run only this rule family (repeatable)",
    )
    parser.add_argument(
        "--no-native",
        action="store_true",
        help="skip the compiler-backed -Werror gate",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule-family catalogue and exit",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for family, (_check, description) in FAMILIES.items():
            print(f"{family}\n    {description}")
        return 0
    root = args.root if args.root is not None else default_root()
    if not (root / "src" / "repro").is_dir():
        print(f"repro-lint: {root} does not look like the repro repository",
              file=sys.stderr)
        return 2
    families = tuple(args.only) if args.only else None
    findings = run_lint(root, families=families, native=not args.no_native)
    if args.format == "json":
        _report_json(findings, sys.stdout)
    else:
        _report_text(findings, sys.stdout)
    return 1 if any(not f.suppressed for f in findings) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
