"""Finding model, pragma grammar and allowlist for ``repro-lint``.

Every rule reports :class:`Finding` objects.  A finding can be suppressed in
two ways (docs/ANALYSIS.md):

* **Inline pragma** — a ``# repro: allow(<rule>[, <rule>...]): <reason>``
  comment on the offending line or on the line immediately above it.  The
  reason is mandatory: an unexplained suppression is itself a violation
  (rule ``pragma-format``).
* **Checked-in allowlist** — ``.repro-lint-allow`` at the repository root,
  one entry per line: ``<rule> <path>[:<line>] <reason...>``.  A path entry
  without a line suppresses the rule for the whole file (used for files
  whose entire job is e.g. wall-clock timing, like the bench harness).

Suppressed findings are retained (``suppressed=True``) so the JSON report
shows what was waived and why; only live findings affect the exit status.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

#: Pragma grammar: ``# repro: allow(rule-a, rule-b): reason text``.
PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*(?P<rules>[a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\s*\)"
    r"\s*(?::\s*(?P<reason>\S.*))?"
)

#: Allowlist entry: ``<rule> <path>[:<line>] <reason...>`` (reason required).
ALLOWLIST_RE = re.compile(
    r"^(?P<rule>[a-z0-9-]+)\s+(?P<path>\S+?)(?::(?P<line>\d+))?\s+(?P<reason>\S.*)$"
)

#: Name of the checked-in allowlist file, looked up at the lint root.
ALLOWLIST_NAME = ".repro-lint-allow"


@dataclass
class Finding:
    """One rule violation (or waived violation) at a source location."""

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    suppression: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}" if self.line else self.path

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
            "suppression": self.suppression,
        }


@dataclass
class Pragmas:
    """Inline ``# repro: allow(...)`` pragmas of one source file."""

    #: line number -> {rule -> reason}; a pragma covers its own line and the
    #: line immediately below (so it can sit above a long statement).
    by_line: dict[int, dict[str, str]] = field(default_factory=dict)
    #: Malformed pragmas (missing reason), reported as findings.
    malformed: list[int] = field(default_factory=list)

    def lookup(self, rule: str, line: int) -> "str | None":
        """The reason suppressing *rule* at *line*, or ``None``."""
        for candidate in (line, line - 1):
            rules = self.by_line.get(candidate)
            if rules is not None and rule in rules:
                return rules[rule]
        return None


def scan_pragmas(text: str) -> Pragmas:
    """Extract every allow-pragma from *text* (line numbers are 1-based)."""
    pragmas = Pragmas()
    for number, line in enumerate(text.splitlines(), start=1):
        if "repro:" not in line:
            continue
        match = PRAGMA_RE.search(line)
        if match is None:
            continue
        reason = match.group("reason")
        if not reason:
            pragmas.malformed.append(number)
            continue
        rules = {name.strip(): reason for name in match.group("rules").split(",")}
        pragmas.by_line.setdefault(number, {}).update(rules)
    return pragmas


class Allowlist:
    """The checked-in suppression list (``.repro-lint-allow``)."""

    def __init__(self) -> None:
        #: (rule, path) -> reason for whole-file entries.
        self._files: dict[tuple[str, str], str] = {}
        #: (rule, path, line) -> reason for line-pinned entries.
        self._lines: dict[tuple[str, str, int], str] = {}
        self.malformed: list[tuple[int, str]] = []

    @classmethod
    def load(cls, path: Path) -> "Allowlist":
        allowlist = cls()
        if not path.is_file():
            return allowlist
        for number, raw in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            match = ALLOWLIST_RE.match(line)
            if match is None:
                allowlist.malformed.append((number, raw))
                continue
            rule = match.group("rule")
            entry_path = match.group("path")
            reason = match.group("reason").strip()
            if match.group("line"):
                key = (rule, entry_path, int(match.group("line")))
                allowlist._lines[key] = reason
            else:
                allowlist._files[(rule, entry_path)] = reason
        return allowlist

    def lookup(self, rule: str, path: str, line: int) -> "str | None":
        """The allowlist reason covering (*rule*, *path*, *line*), if any."""
        pinned = self._lines.get((rule, path, line))
        if pinned is not None:
            return pinned
        return self._files.get((rule, path))


def apply_suppressions(
    findings: "list[Finding]",
    pragmas_by_path: "dict[str, Pragmas]",
    allowlist: Allowlist,
) -> "list[Finding]":
    """Mark findings covered by a pragma or allowlist entry as suppressed."""
    for finding in findings:
        pragmas = pragmas_by_path.get(finding.path)
        reason = pragmas.lookup(finding.rule, finding.line) if pragmas else None
        if reason is not None:
            finding.suppressed = True
            finding.suppression = f"pragma: {reason}"
            continue
        reason = allowlist.lookup(finding.rule, finding.path, finding.line)
        if reason is not None:
            finding.suppressed = True
            finding.suppression = f"allowlist: {reason}"
    return findings
