"""A light C tokenizer for ``coresim/native/_core.c``.

This is deliberately **not** a C parser: the native kernel's contract
surface with ``kernel.py`` is three flat declarations — integer ``#define``
macros, anonymous ``enum`` blocks (the counter-slot layout and the op-class
values), and the ``SimParams`` struct's field list — all of which regular
expressions extract reliably from the comment-stripped source.  The
counter-contract checker compares what comes out of here against the ctypes
marshalling layer, so a slot inserted, removed or reordered on either side
of the FFI boundary fails at lint time instead of as a silent counter skew.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_COMMENT_RE = re.compile(r"/\*.*?\*/|//[^\n]*", re.DOTALL)
_DEFINE_RE = re.compile(r"^\s*#\s*define\s+([A-Za-z_]\w*)\s+(.+?)\s*$", re.MULTILINE)
_ENUM_RE = re.compile(r"\benum\s*(?:[A-Za-z_]\w*\s*)?\{(.*?)\}", re.DOTALL)
_STRUCT_RE = re.compile(
    r"typedef\s+struct\s*\{(.*?)\}\s*([A-Za-z_]\w*)\s*;", re.DOTALL
)
_FIELD_RE = re.compile(
    r"([A-Za-z_]\w*)\s+([A-Za-z_]\w*)\s*(?:\[\s*([^\]]+?)\s*\])?\s*;"
)
_EXPR_OK_RE = re.compile(r"^[\w\s+\-*/()]+$")


class CTokenizeError(ValueError):
    """The source does not match the flat declaration shapes we rely on."""


@dataclass
class CStructField:
    name: str
    ctype: str
    array_length: "int | None" = None


@dataclass
class CSource:
    """Extracted declarations of one C translation unit."""

    #: Every integer constant: #defines plus all enum members, by name.
    constants: dict[str, int] = field(default_factory=dict)
    #: Enum blocks, in file order, as ordered (name, value) lists.
    enums: list[list[tuple[str, int]]] = field(default_factory=list)
    #: Structs by typedef name.
    structs: dict[str, list[CStructField]] = field(default_factory=dict)
    #: Names of functions defined at file scope (crude but sufficient).
    functions: set[str] = field(default_factory=set)

    def enum_containing(self, member: str) -> "list[tuple[str, int]]":
        for block in self.enums:
            if any(name == member for name, _value in block):
                return block
        raise CTokenizeError(f"no enum block defines {member!r}")

    def enum_index(self, member: str) -> int:
        """The *position* of an enum member within its block (not its value)."""
        block = self.enum_containing(member)
        for index, (name, _value) in enumerate(block):
            if name == member:
                return index
        raise CTokenizeError(member)  # pragma: no cover - enum_containing found it

    def value(self, name: str) -> int:
        if name not in self.constants:
            raise CTokenizeError(f"unknown C constant {name!r}")
        return self.constants[name]


def _eval_expr(expr: str, env: "dict[str, int]") -> int:
    expr = expr.strip()
    if not _EXPR_OK_RE.match(expr):
        raise CTokenizeError(f"unsupported C constant expression: {expr!r}")
    try:
        result = eval(  # noqa: S307 - token set restricted to arithmetic above
            expr, {"__builtins__": {}}, dict(env)
        )
    except Exception as exc:
        raise CTokenizeError(f"cannot evaluate C expression {expr!r}: {exc}") from exc
    if not isinstance(result, int):
        raise CTokenizeError(f"non-integer C expression {expr!r}")
    return result


def tokenize(text: str) -> CSource:
    """Extract defines, enums and structs from C source *text*."""
    stripped = _COMMENT_RE.sub(" ", text)
    source = CSource()

    for name, expr in _DEFINE_RE.findall(stripped):
        try:
            source.constants[name] = _eval_expr(expr, source.constants)
        except CTokenizeError:
            continue  # non-integer macro (none exist in _core.c today)

    for body in _ENUM_RE.findall(stripped):
        block: list[tuple[str, int]] = []
        next_value = 0
        for entry in body.split(","):
            entry = entry.strip()
            if not entry:
                continue
            if "=" in entry:
                name, expr = (part.strip() for part in entry.split("=", 1))
                value = _eval_expr(expr, source.constants)
            else:
                name, value = entry, next_value
            if not re.fullmatch(r"[A-Za-z_]\w*", name):
                raise CTokenizeError(f"malformed enum member {entry!r}")
            block.append((name, value))
            source.constants[name] = value
            next_value = value + 1
        source.enums.append(block)

    for body, typedef_name in _STRUCT_RE.findall(stripped):
        fields = [
            CStructField(
                name=name,
                ctype=ctype,
                array_length=(
                    _eval_expr(length, source.constants) if length else None
                ),
            )
            for ctype, name, length in _FIELD_RE.findall(body)
        ]
        source.structs[typedef_name] = fields

    # Function definitions: a return type followed by name( at line start-ish.
    for match in re.finditer(
        r"^[A-Za-z_][\w\s*]*?\b([A-Za-z_]\w*)\s*\([^;{]*\)\s*\{",
        stripped,
        re.MULTILINE,
    ):
        source.functions.add(match.group(1))
    return source
