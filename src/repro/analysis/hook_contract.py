"""Hook-override eligibility lint (rule family 3).

The scalar pipeline skips unoverridden hooks entirely, and the vector and
native kernels refuse bug models that override any *dynamic* hook — both
decisions are made by **class-level** comparison against
:class:`~repro.coresim.hooks.CoreBugModel`.  That mechanism is sound only
while three invariants hold, all of which this rule checks statically:

* The hook namespace is partitioned: ``VECTOR_SAFE_HOOKS`` (structural,
  evaluated once) and ``_DYNAMIC_HOOKS`` (per-cycle) in ``vector.py``
  together cover exactly the hook methods ``CoreBugModel`` defines, with no
  overlap and nothing left over.  A hook added to ``hooks.py`` but not
  classified would silently run on kernels that never call it.
* The scalar pipeline's ``_HOOK_FLAGS`` hoisting table covers exactly the
  dynamic hooks it dispatches per cycle (everything dynamic except
  ``cache_extra_latency``, which the cache model reads at construction).
* Nobody assigns hooks at instance level (``self.serialize = ...``) or
  monkeypatches them onto a class (``SomeBug.serialize = ...``): both defeat
  class-level override detection, so the fast path would skip a hook the
  model believes is active — precisely the silent-divergence failure mode
  the three-kernel oracle exists to prevent.

It also pins the eligibility chain itself: ``native/kernel.py`` must derive
``supports_native`` from ``supports_vector`` so the two lanes can never
disagree about which bug models are hook-free.
"""

from __future__ import annotations

import ast

from .findings import Finding
from .tree import SourceTree

HOOKS_PATH = "src/repro/coresim/hooks.py"
VECTOR_PATH = "src/repro/coresim/vector.py"
PIPELINE_PATH = "src/repro/coresim/pipeline.py"
NATIVE_KERNEL_PATH = "src/repro/coresim/native/kernel.py"

RULE = "hook-contract"


def _fail(path: str, line: int, message: str) -> Finding:
    return Finding(RULE, path, line, message)


def hook_methods(tree: SourceTree) -> "set[str]":
    """Hook names: every public method ``CoreBugModel`` defines."""
    module = tree.parse(HOOKS_PATH)
    for node in module.body:
        if isinstance(node, ast.ClassDef) and node.name == "CoreBugModel":
            return {
                statement.name
                for statement in node.body
                if isinstance(statement, ast.FunctionDef)
                and not statement.name.startswith("_")
            }
    raise ValueError(f"CoreBugModel not found in {HOOKS_PATH}")


def _string_collection(module: ast.Module, target_name: str) -> "set[str] | None":
    """The string elements of a module-level set/tuple/frozenset assignment."""
    for node in module.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == target_name
        ):
            strings = {
                inner.value
                for inner in ast.walk(node.value)
                if isinstance(inner, ast.Constant) and isinstance(inner.value, str)
            }
            return strings
    return None


def _hook_flag_names(module: ast.Module) -> "set[str] | None":
    """First elements of the ``_HOOK_FLAGS`` (hook, attr) pair table."""
    for node in module.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "_HOOK_FLAGS"
            and isinstance(node.value, ast.Tuple)
        ):
            names = set()
            for element in node.value.elts:
                if (
                    isinstance(element, ast.Tuple)
                    and element.elts
                    and isinstance(element.elts[0], ast.Constant)
                    and isinstance(element.elts[0].value, str)
                ):
                    names.add(element.elts[0].value)
            return names
    return None


def check_partition(tree: SourceTree) -> "list[Finding]":
    """Hook-namespace partition checks across hooks/vector/pipeline."""
    findings: list[Finding] = []
    try:
        hooks = hook_methods(tree)
    except (ValueError, OSError, SyntaxError) as exc:
        return [_fail(HOOKS_PATH, 0, f"cannot extract CoreBugModel hooks: {exc}")]

    vector_module = tree.parse(VECTOR_PATH)
    safe = _string_collection(vector_module, "VECTOR_SAFE_HOOKS")
    dynamic = _string_collection(vector_module, "_DYNAMIC_HOOKS")
    if safe is None or dynamic is None:
        return [
            _fail(
                VECTOR_PATH,
                0,
                "VECTOR_SAFE_HOOKS/_DYNAMIC_HOOKS classification tables not found",
            )
        ]

    for name in sorted(safe & dynamic):
        findings.append(
            _fail(
                VECTOR_PATH,
                0,
                f"hook {name!r} classified both vector-safe and dynamic",
            )
        )
    for name in sorted(hooks - (safe | dynamic)):
        findings.append(
            _fail(
                VECTOR_PATH,
                0,
                f"CoreBugModel hook {name!r} is unclassified — add it to "
                "VECTOR_SAFE_HOOKS or _DYNAMIC_HOOKS in vector.py",
            )
        )
    for name in sorted((safe | dynamic) - hooks):
        findings.append(
            _fail(
                VECTOR_PATH,
                0,
                f"vector.py classifies {name!r} but CoreBugModel defines no "
                "such hook",
            )
        )

    flags = _hook_flag_names(tree.parse(PIPELINE_PATH))
    if flags is None:
        findings.append(_fail(PIPELINE_PATH, 0, "_HOOK_FLAGS table not found"))
    else:
        expected = dynamic - {"cache_extra_latency"}
        for name in sorted(expected - flags):
            findings.append(
                _fail(
                    PIPELINE_PATH,
                    0,
                    f"dynamic hook {name!r} missing from the pipeline's "
                    "_HOOK_FLAGS hoisting table — it would never be called",
                )
            )
        for name in sorted(flags - expected):
            findings.append(
                _fail(
                    PIPELINE_PATH,
                    0,
                    f"_HOOK_FLAGS hoists {name!r}, which is not a per-cycle "
                    "dynamic hook",
                )
            )
    return findings


def check_native_defers(tree: SourceTree) -> "list[Finding]":
    """``supports_native`` must be derived from ``supports_vector``."""
    module = tree.parse(NATIVE_KERNEL_PATH)
    for node in ast.walk(module):
        if isinstance(node, ast.FunctionDef) and node.name == "supports_native":
            for inner in ast.walk(node):
                if isinstance(inner, ast.Call):
                    func = inner.func
                    name = (
                        func.id
                        if isinstance(func, ast.Name)
                        else func.attr
                        if isinstance(func, ast.Attribute)
                        else None
                    )
                    if name == "supports_vector":
                        return []
            return [
                _fail(
                    NATIVE_KERNEL_PATH,
                    node.lineno,
                    "supports_native does not defer to supports_vector — the "
                    "two lanes can disagree about hook-free bug models",
                )
            ]
    return [_fail(NATIVE_KERNEL_PATH, 0, "supports_native not found")]


def _bug_model_classes(module: ast.Module) -> "dict[str, ast.ClassDef]":
    """Classes in *module* that (transitively, by name) extend CoreBugModel."""
    by_name = {
        node.name: node for node in ast.walk(module) if isinstance(node, ast.ClassDef)
    }

    def base_names(node: ast.ClassDef) -> "list[str]":
        names = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                names.append(base.id)
            elif isinstance(base, ast.Attribute):
                names.append(base.attr)
        return names

    models: dict[str, ast.ClassDef] = {}
    changed = True
    while changed:
        changed = False
        for name, node in by_name.items():
            if name in models:
                continue
            for base in base_names(node):
                if base in ("CoreBugModel", "CoreBug") or base in models:
                    models[name] = node
                    changed = True
                    break
    return models


def check_overrides(tree: SourceTree) -> "list[Finding]":
    """Flag hook bindings that bypass class-level override detection."""
    try:
        hooks = hook_methods(tree)
    except (ValueError, OSError, SyntaxError):
        return []  # check_partition already reported this

    findings: list[Finding] = []
    for path in tree.python_files():
        module = tree.parse(path)
        models = _bug_model_classes(module)

        # self.<hook> = ... inside a bug-model class body defeats the
        # class-level override scan: the pipeline hoists hooks from the type.
        for class_node in models.values():
            for node in ast.walk(class_node):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and target.attr in hooks
                        ):
                            findings.append(
                                _fail(
                                    path,
                                    node.lineno,
                                    f"instance-level hook binding self."
                                    f"{target.attr} in {class_node.name}: "
                                    "class-level override detection will not "
                                    "see it and the fast path skips the hook",
                                )
                            )

        # Class.<hook> = ... / setattr(Class, "<hook>", ...) at any scope
        # rewrites eligibility after kernels may have cached their decision.
        for node in ast.walk(module):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in hooks
                        and isinstance(target.value, ast.Name)
                        and target.value.id != "self"
                        and (
                            target.value.id in models
                            or target.value.id in ("CoreBugModel", "CoreBug")
                        )
                    ):
                        findings.append(
                            _fail(
                                path,
                                node.lineno,
                                f"monkeypatched hook {target.value.id}."
                                f"{target.attr}: kernel-eligibility decisions "
                                "already made from the class are now stale",
                            )
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "setattr"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and node.args[1].value in hooks
            ):
                findings.append(
                    _fail(
                        path,
                        node.lineno,
                        f"setattr-based hook binding of {node.args[1].value!r} "
                        "bypasses class-level override detection",
                    )
                )
    return findings


def check(tree: SourceTree) -> "list[Finding]":
    """Run the full hook-contract rule family."""
    findings = check_partition(tree)
    findings.extend(check_native_defers(tree))
    findings.extend(check_overrides(tree))
    return findings
