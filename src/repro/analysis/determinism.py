"""Determinism lints (rule family 2): AST visitors over every source file.

The repository's core guarantee is that simulation results are a pure
function of ``(config, bug, trace, step)`` — that is what lets three kernels
be pinned bit-identical and lets the content-addressed result store replay
across hosts and backends.  These rules flag the constructs that historically
break that purity:

``global-rng``
    Calls into the *global* RNG streams (``random.*`` module functions,
    ``np.random.*`` legacy functions).  Seeded generator construction
    (``np.random.default_rng(seed)``, ``random.Random(seed)``) is fine — the
    point is that shared mutable RNG state must not leak into (or out of)
    result-affecting code.  The sanctioned save/restore sites in
    ``runtime/execution.py`` carry pragmas.

``wall-clock``
    ``time.time()`` / ``time.perf_counter()`` / ``datetime.now()`` and
    friends.  Wall-clock reads are legitimate in measurement and bookkeeping
    code (bench, serve stats, store mtimes) — those files are allowlisted —
    but must never feed stored simulation results.

``id-hash``
    ``id(...)`` feeding a hash-based container or ``hash()``: ``id`` values
    vary across processes, so any ordering or keying derived from them is
    nondeterministic across the serial/parallel execution boundary.

``set-order``
    Iterating an unordered ``set``/``frozenset`` into an order-sensitive
    consumer (``for`` loop body, ``list``/``tuple``/``enumerate``/``join``,
    list/dict comprehension).  Order-insensitive reducers (``sorted``,
    ``min``/``max``/``sum``/``len``/``any``/``all``) are not flagged.
"""

from __future__ import annotations

import ast

from .findings import Finding
from .tree import SourceTree

#: ``numpy.random`` attributes that construct independent, explicitly seeded
#: generators rather than touching the shared legacy stream.
_NP_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence", "RandomState", "BitGenerator", "PCG64", "Philox"})

#: ``random`` module attributes that are constructors, not global-stream calls.
_PY_RANDOM_OK = frozenset({"Random", "SystemRandom"})

#: Wall-clock reads (resolved dotted names).
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Callables whose argument order does not matter (safe set consumers).
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
)

#: Callables that materialise their argument's iteration order.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter", "next"})


def _import_aliases(module: ast.Module) -> "dict[str, str]":
    """Local name -> fully qualified module/attribute path, from imports."""
    aliases: dict[str, str] = {}
    for node in ast.walk(module):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = (
                    name.name if name.asname else name.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def _dotted(node: ast.expr) -> "str | None":
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _resolve(dotted: "str | None", aliases: "dict[str, str]") -> "str | None":
    """Expand the leading alias of *dotted* to its imported path."""
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    expansion = aliases.get(head)
    if expansion is None:
        return dotted
    return f"{expansion}.{rest}" if rest else expansion


def _is_set_producer(node: ast.expr) -> bool:
    """True when *node* syntactically evaluates to an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # Set algebra (a | b, a - b, ...) is only recognised when one side is
        # itself a syntactic set; plain integer arithmetic stays quiet.
        return _is_set_producer(node.left) or _is_set_producer(node.right)
    return False


def _contains_id_call(node: ast.AST) -> "ast.Call | None":
    for inner in ast.walk(node):
        if (
            isinstance(inner, ast.Call)
            and isinstance(inner.func, ast.Name)
            and inner.func.id == "id"
            and len(inner.args) == 1
        ):
            return inner
    return None


def check_file(path: str, module: ast.Module) -> "list[Finding]":
    """Run every determinism rule over one parsed file."""
    findings: list[Finding] = []
    aliases = _import_aliases(module)

    for node in ast.walk(module):
        # ---------------------------------------------- global-rng, wall-clock
        if isinstance(node, ast.Call):
            name = _resolve(_dotted(node.func), aliases)
            if name is not None:
                if name.startswith("random.") and name.count(".") == 1:
                    attr = name.split(".", 1)[1]
                    if attr not in _PY_RANDOM_OK:
                        findings.append(
                            Finding(
                                "global-rng",
                                path,
                                node.lineno,
                                f"call to the global RNG stream: random.{attr}() "
                                "(use a seeded random.Random instance)",
                            )
                        )
                elif name.startswith("numpy.random."):
                    attr = name.split(".", 2)[2].split(".")[0]
                    if attr not in _NP_RANDOM_OK:
                        findings.append(
                            Finding(
                                "global-rng",
                                path,
                                node.lineno,
                                f"call to the global numpy RNG: np.random.{attr}() "
                                "(use np.random.default_rng(seed))",
                            )
                        )
                elif name in _WALL_CLOCK:
                    findings.append(
                        Finding(
                            "wall-clock",
                            path,
                            node.lineno,
                            f"wall-clock read {name}() — must not affect stored "
                            "results (pragma/allowlist for measurement code)",
                        )
                    )

            # ------------------------------------------------------- id-hash
            if isinstance(node.func, ast.Name) and node.func.id in (
                "hash",
                "set",
                "frozenset",
            ):
                for arg in node.args:
                    hit = _contains_id_call(arg)
                    if hit is not None:
                        findings.append(
                            Finding(
                                "id-hash",
                                path,
                                hit.lineno,
                                f"id() feeding {node.func.id}(): object ids are "
                                "process-specific and break cross-process determinism",
                            )
                        )

            # ------------------------------------- set-order (call consumers)
            func_name = node.func.id if isinstance(node.func, ast.Name) else None
            if func_name in _ORDER_SENSITIVE_CALLS:
                for arg in node.args:
                    if _is_set_producer(arg):
                        findings.append(
                            Finding(
                                "set-order",
                                path,
                                arg.lineno,
                                f"{func_name}() over an unordered set materialises "
                                "nondeterministic order (wrap in sorted(...))",
                            )
                        )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and node.args
                and _is_set_producer(node.args[0])
            ):
                findings.append(
                    Finding(
                        "set-order",
                        path,
                        node.lineno,
                        "str.join over an unordered set produces nondeterministic "
                        "text (wrap in sorted(...))",
                    )
                )

        elif isinstance(node, (ast.Set, ast.Dict, ast.SetComp, ast.DictComp, ast.Subscript)):
            # ------------------------------------------- id-hash (containers)
            exprs: list[ast.expr] = []
            if isinstance(node, ast.Set):
                exprs = node.elts
            elif isinstance(node, ast.Dict):
                exprs = [key for key in node.keys if key is not None]
            elif isinstance(node, ast.SetComp):
                exprs = [node.elt]
            elif isinstance(node, ast.DictComp):
                exprs = [node.key]
            elif isinstance(node, ast.Subscript):
                exprs = [node.slice]
            for expr in exprs:
                hit = _contains_id_call(expr)
                if hit is not None:
                    kind = type(node).__name__
                    findings.append(
                        Finding(
                            "id-hash",
                            path,
                            hit.lineno,
                            f"id() used as a {kind} key/element: object ids are "
                            "process-specific and break cross-process determinism",
                        )
                    )

        # ------------------------------------------- set-order (iteration)
        if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_producer(node.iter):
            findings.append(
                Finding(
                    "set-order",
                    path,
                    node.iter.lineno,
                    "for-loop over an unordered set: iteration order is "
                    "hash-dependent (iterate sorted(...) instead)",
                )
            )
        elif isinstance(node, (ast.ListComp, ast.DictComp)):
            for generator in node.generators:
                if _is_set_producer(generator.iter):
                    findings.append(
                        Finding(
                            "set-order",
                            path,
                            generator.iter.lineno,
                            "comprehension over an unordered set builds an "
                            "order-sensitive container (iterate sorted(...))",
                        )
                    )
    return findings


def check(tree: SourceTree) -> "list[Finding]":
    """Determinism lints over every Python file under ``src/repro``."""
    findings: list[Finding] = []
    for path in tree.python_files():
        findings.extend(check_file(path, tree.parse(path)))
    return findings
