"""Native warning gate: ``_core.c`` must be ``-Wall -Wextra -Werror`` clean.

Unlike the other rule families this one shells out to the system C compiler
(via :func:`repro.coresim.native.build.werror_check`).  The regular kernel
build deliberately does **not** pass ``-Werror`` — a user's toolchain must
never lose the native kernel over a new warning — so the strictness lives
here, in the lint, where a warning is a reviewable finding instead of a
runtime regression.

On hosts without a compiler the gate is skipped (no findings): CI runs it on
a toolchain-pinned image where it is authoritative.  Pass ``--no-native``
to the CLI to skip it explicitly.
"""

from __future__ import annotations

from .findings import Finding
from .tree import SourceTree

RULE = "native-warnings"

C_PATH = "src/repro/coresim/native/_core.c"


def check(tree: SourceTree) -> "list[Finding]":
    from ..coresim.native import build

    if not tree.exists(C_PATH):
        return [Finding(RULE, C_PATH, 0, "native kernel C source is missing")]
    ok, diagnostics = build.werror_check(tree.read(C_PATH))
    if ok is None or ok:
        return []
    findings = []
    for line in diagnostics.splitlines():
        line = line.strip()
        # Keep only the actual diagnostic lines; drop carets and context.
        if ": error:" in line or ": warning:" in line:
            # "<tmpfile>.c:LINE:COL: error: ..." -> pin to the real source.
            parts = line.split(":", 3)
            lineno = 0
            if len(parts) >= 2 and parts[1].isdigit():
                lineno = int(parts[1])
            findings.append(Finding(RULE, C_PATH, lineno, parts[-1].strip()))
    if not findings:
        findings.append(
            Finding(RULE, C_PATH, 0, diagnostics or "werror gate failed")
        )
    return findings
