"""``repro.analysis`` — static contract analysis (``repro-lint``).

The three simulation kernels are pinned bit-identical by the differential
oracle at *test* time; this package enforces the underlying contracts at
*lint* time, before anything runs:

* ``counter_contract`` — one counter-name universe across all four lanes
  (scalar, frozen reference, vector, native C) plus the C↔ctypes ABI.
* ``determinism`` — no global RNG, wall-clock, ``id()``-keyed hashing or
  unordered-set iteration in result-affecting code.
* ``hook_contract`` — class-level hook-override discipline and the
  vector/native eligibility partition.
* ``protocol_constants`` — wire/schema constants defined exactly once.
* ``native_gate`` — ``_core.c`` stays ``-Wall -Wextra -Werror`` clean.

Entry points: the ``repro-lint`` console script and
``python -m repro.analysis`` (both -> :func:`repro.analysis.cli.main`).
"""

from .findings import Allowlist, Finding, Pragmas, scan_pragmas
from .tree import SourceTree

__all__ = [
    "Allowlist",
    "Finding",
    "Pragmas",
    "SourceTree",
    "scan_pragmas",
]
