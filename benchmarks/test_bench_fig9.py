"""Benchmark: regenerate fig9_probes (Figure 9)."""

from repro.experiments import fig9_probes as experiment

from conftest import run_experiment


def test_bench_fig9(benchmark, bench_scale, context):
    run_experiment(benchmark, experiment, bench_scale, context)
