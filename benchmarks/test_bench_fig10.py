"""Benchmark: regenerate fig10_counters (Figure 10)."""

from repro.experiments import fig10_counters as experiment

from conftest import run_experiment


def test_bench_fig10(benchmark, bench_scale, context):
    run_experiment(benchmark, experiment, bench_scale, context)
