"""Benchmark: regenerate table4_ipc_modeling (Table IV)."""

from repro.experiments import table4_ipc_modeling as experiment

from conftest import run_experiment


def test_bench_table4(benchmark, bench_scale, context):
    run_experiment(benchmark, experiment, bench_scale, context)
