"""Benchmark: regenerate fig3_simpoint_ipc (Figure 3)."""

from repro.experiments import fig3_simpoint_ipc as experiment

from conftest import run_experiment


def test_bench_fig3(benchmark, bench_scale, context):
    run_experiment(benchmark, experiment, bench_scale, context)
