"""Benchmark: regenerate fig12_arch_features (Figure 12)."""

from repro.experiments import fig12_arch_features as experiment

from conftest import run_experiment


def test_bench_fig12(benchmark, bench_scale, context):
    run_experiment(benchmark, experiment, bench_scale, context)
