"""Benchmark: regenerate fig8_roc (Figure 8)."""

from repro.experiments import fig8_roc as experiment

from conftest import run_experiment


def test_bench_fig8(benchmark, bench_scale, context):
    run_experiment(benchmark, experiment, bench_scale, context)
