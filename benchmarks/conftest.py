"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at the ``smoke``
scale (see ``repro.experiments.common``).  A single :class:`ExperimentContext`
is shared across benchmarks so simulations are not repeated; set the
``REPRO_BENCH_SCALE`` environment variable to ``small`` or ``full`` for a
higher-fidelity (and much longer) run.  ``REPRO_JOBS`` shards the underlying
simulations across worker processes, and ``REPRO_BENCH_STORE`` points the
context at a persistent result store so repeated benchmark sessions skip
simulation entirely (timings then measure the ML/analysis stages).
"""

import os

import pytest

from repro.experiments.common import ExperimentContext


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "smoke")


@pytest.fixture(scope="session")
def context(bench_scale) -> ExperimentContext:
    return ExperimentContext(
        bench_scale, store_path=os.environ.get("REPRO_BENCH_STORE") or None
    )


def run_experiment(benchmark, module, bench_scale, context):
    """Run one experiment exactly once under pytest-benchmark timing."""
    result = benchmark.pedantic(
        module.run, kwargs={"scale": bench_scale, "context": context},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert result.rows, f"{module.EXPERIMENT_ID} produced no rows"
    print()
    print(result.to_text())
    return result
