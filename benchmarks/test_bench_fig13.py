"""Benchmark: regenerate fig13_training_archs (Figure 13)."""

from repro.experiments import fig13_training_archs as experiment

from conftest import run_experiment


def test_bench_fig13(benchmark, bench_scale, context):
    run_experiment(benchmark, experiment, bench_scale, context)
