"""Benchmark: regenerate table5_detection (Table V)."""

from repro.experiments import table5_detection as experiment

from conftest import run_experiment


def test_bench_table5(benchmark, bench_scale, context):
    run_experiment(benchmark, experiment, bench_scale, context)
