"""Benchmark: regenerate table7_memory (Table VII)."""

from repro.experiments import table7_memory as experiment

from conftest import run_experiment


def test_bench_table7(benchmark, bench_scale, context):
    run_experiment(benchmark, experiment, bench_scale, context)
