"""Benchmark: regenerate fig1_speedup (Figure 1)."""

from repro.experiments import fig1_speedup as experiment

from conftest import run_experiment


def test_bench_fig1(benchmark, bench_scale, context):
    run_experiment(benchmark, experiment, bench_scale, context)
