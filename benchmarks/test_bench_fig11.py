"""Benchmark: regenerate fig11_timestep (Figure 11)."""

from repro.experiments import fig11_timestep as experiment

from conftest import run_experiment


def test_bench_fig11(benchmark, bench_scale, context):
    run_experiment(benchmark, experiment, bench_scale, context)
