"""Benchmark: regenerate fig5_traces (Figure 5)."""

from repro.experiments import fig5_traces as experiment

from conftest import run_experiment


def test_bench_fig5(benchmark, bench_scale, context):
    run_experiment(benchmark, experiment, bench_scale, context)
