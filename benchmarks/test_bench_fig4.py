"""Benchmark: regenerate fig4_severity (Figure 4)."""

from repro.experiments import fig4_severity as experiment

from conftest import run_experiment


def test_bench_fig4(benchmark, bench_scale, context):
    run_experiment(benchmark, experiment, bench_scale, context)
