#!/usr/bin/env python3
"""Uninstalled entry point for the perf harness: ``python benchmarks/perf/run.py``.

Equivalent to the ``repro-bench`` console script; adds ``src/`` to
``sys.path`` so it works straight from a checkout.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..", "src")
)

from repro.bench.perf import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
