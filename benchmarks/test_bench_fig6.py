"""Benchmark: regenerate fig6_bug_vs_bugfree (Figure 6)."""

from repro.experiments import fig6_bug_vs_bugfree as experiment

from conftest import run_experiment


def test_bench_fig6(benchmark, bench_scale, context):
    run_experiment(benchmark, experiment, bench_scale, context)
