"""Benchmark: regenerate table6_window (Table VI)."""

from repro.experiments import table6_window as experiment

from conftest import run_experiment


def test_bench_table6(benchmark, bench_scale, context):
    run_experiment(benchmark, experiment, bench_scale, context)
