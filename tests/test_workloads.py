"""Tests for the synthetic-workload subsystem (ISA, programs, traces)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    NUM_ARCH_REGS,
    Opcode,
    SPEC2006_BENCHMARKS,
    TraceGenerator,
    all_workloads,
    build_program,
    opcode_class,
    split_into_intervals,
    workload,
)
from repro.workloads.isa import OPCODE_CLASS, is_branch, is_memory
from repro.workloads.program import BlockSpec, PhaseSpec, WorkloadSpec


class TestISA:
    def test_every_opcode_has_a_class(self):
        assert set(OPCODE_CLASS) == set(Opcode)

    def test_opcode_class_lookup(self):
        assert opcode_class(Opcode.FMUL).name == "FP_MULT"
        assert opcode_class(Opcode.LOAD).name == "LOAD"

    def test_memory_and_branch_predicates(self):
        assert is_memory(Opcode.LOAD) and is_memory(Opcode.STORE)
        assert not is_memory(Opcode.ADD)
        assert is_branch(Opcode.BRANCH) and is_branch(Opcode.CALL)
        assert not is_branch(Opcode.XOR)


class TestSpecs:
    def test_block_spec_validation(self):
        with pytest.raises(ValueError):
            BlockSpec(name="bad", length=0, mix={Opcode.ADD: 1})
        with pytest.raises(ValueError):
            BlockSpec(name="bad", length=4, mix={})
        with pytest.raises(ValueError):
            BlockSpec(name="bad", length=4, mix={Opcode.ADD: 1}, branch_taken_prob=2.0)

    def test_phase_weights_normalised(self):
        spec = workload("403.gcc")
        weights = spec.phase_weights()
        assert abs(sum(weights) - 1.0) < 1e-9
        assert all(w > 0 for w in weights)

    def test_workload_requires_unique_block_names(self):
        block = BlockSpec(name="dup", length=4, mix={Opcode.ADD: 1})
        phase = PhaseSpec(name="p", blocks=(block, block))
        with pytest.raises(ValueError):
            WorkloadSpec(name="w", operand_type="Integer", phases=(phase,))

    def test_all_ten_benchmarks_present(self):
        assert len(SPEC2006_BENCHMARKS) == 10
        assert len(all_workloads()) == 10
        with pytest.raises(KeyError):
            workload("999.unknown")


class TestProgramBuild:
    def test_build_is_deterministic(self):
        a = build_program(workload("458.sjeng"), seed=5)
        b = build_program(workload("458.sjeng"), seed=5)
        for block_a, block_b in zip(a.all_blocks(), b.all_blocks()):
            assert [i.opcode for i in block_a.instrs] == [i.opcode for i in block_b.instrs]
            assert [i.srcs for i in block_a.instrs] == [i.srcs for i in block_b.instrs]

    def test_block_ids_unique_and_registered(self, gcc_program):
        ids = [b.block_id for b in gcc_program.all_blocks()]
        assert len(ids) == len(set(ids))
        assert gcc_program.num_blocks == len(ids)
        for block_id in ids:
            assert gcc_program.block(block_id).block_id == block_id

    def test_registers_within_architectural_range(self, gcc_program):
        for block in gcc_program.all_blocks():
            for instr in block.instrs:
                if instr.dest is not None:
                    assert 0 <= instr.dest < NUM_ARCH_REGS
                for src in instr.srcs:
                    assert 0 <= src < NUM_ARCH_REGS


class TestTraceGeneration:
    def test_trace_length_close_to_requested(self, gcc_program):
        trace = TraceGenerator(gcc_program, seed=3).generate(5000)
        assert 5000 <= len(trace) <= 5000 * 1.3

    def test_trace_deterministic(self, gcc_program):
        t1 = TraceGenerator(gcc_program, seed=3).generate(2000)
        t2 = TraceGenerator(gcc_program, seed=3).generate(2000)
        assert len(t1) == len(t2)
        assert all(a.opcode == b.opcode and a.address == b.address and a.taken == b.taken
                   for a, b in zip(t1, t2))

    def test_memory_ops_have_addresses_and_branches_have_outcomes(self, gcc_trace):
        for uop in gcc_trace:
            if uop.is_mem:
                assert uop.address is not None and uop.address > 0
            if uop.is_branch:
                assert uop.taken is not None and uop.target is not None

    def test_block_ids_valid(self, gcc_program, gcc_trace):
        valid = set(gcc_program.blocks_by_id)
        assert all(uop.block_id in valid for uop in gcc_trace)

    def test_addresses_stay_in_block_working_set(self, gcc_program):
        trace = TraceGenerator(gcc_program, seed=9).generate(3000)
        for uop in trace:
            if not uop.is_mem:
                continue
            block = gcc_program.block(uop.block_id)
            offset = uop.address - block.data_base
            assert 0 <= offset < max(block.spec.working_set, block.spec.stride) + 8

    def test_rejects_nonpositive_budget(self, gcc_program):
        with pytest.raises(ValueError):
            TraceGenerator(gcc_program).generate(0)

    @settings(max_examples=20, deadline=None)
    @given(interval=st.integers(min_value=1, max_value=4000))
    def test_split_into_intervals_preserves_prefix(self, gcc_trace, interval):
        intervals = split_into_intervals(gcc_trace, interval)
        flattened = [uop for chunk in intervals for uop in chunk]
        assert flattened == gcc_trace[: len(flattened)]
        assert all(len(chunk) <= interval for chunk in intervals)

    def test_split_rejects_bad_interval(self, gcc_trace):
        with pytest.raises(ValueError):
            split_into_intervals(gcc_trace, 0)

    def test_xor_heavy_phase_present_in_gcc(self, gcc_program):
        fractions = {}
        trace = TraceGenerator(gcc_program, seed=1).generate(8000)
        for uop in trace:
            fractions.setdefault(uop.block_id, [0, 0])
            fractions[uop.block_id][1] += 1
            if uop.opcode is Opcode.XOR:
                fractions[uop.block_id][0] += 1
        xor_rates = [hits / total for hits, total in fractions.values() if total > 100]
        assert max(xor_rates) > 0.05  # the gcc_bitset phase is xor-heavy
