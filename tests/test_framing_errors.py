"""Frame-protocol error paths under truncation, version skew and liveness.

The framing layer (:mod:`repro.runtime.framing`) is shared by
``repro-worker``, the cluster scheduler and ``repro-serve``; this suite
pins its failure semantics at three levels: the raw :func:`read_frame`
contract (EOF at a boundary vs. inside a frame), the worker serving loop's
response to bad frames and version skew, and the cluster scheduler's
isolation guarantee — a worker emitting a truncated frame kills only that
worker's connection, never the sweep.
"""

import io
import subprocess
import sys

import pytest

from repro.bugs.core_bugs import SerializeOpcode
from repro.cluster.backend import ClusterBackend
from repro.runtime import BackendError, JobEngine, SimulationJob, TraceRegistry
from repro.runtime.backends.remote import local_worker_command
from repro.runtime.framing import (
    ERROR,
    HEARTBEAT,
    HELLO,
    PING,
    PONG,
    PROTOCOL_VERSION,
    SHUTDOWN,
    ProtocolError,
    read_frame,
    write_frame,
)
from repro.runtime.worker import serve
from repro.uarch import core_microarch
from repro.workloads import TraceGenerator, build_program, workload
from repro.workloads.isa import Opcode

#: Worker that handshakes, then answers its first chunk with three bytes of
#: a frame header and dies — a mid-frame truncation as the driver sees it.
TRUNCATING_WORKER = r"""
import sys
from repro.runtime.framing import CHUNK, HELLO, PROTOCOL_VERSION, read_frame, write_frame
stdin, stdout = sys.stdin.buffer, sys.stdout.buffer
read_frame(stdin)
write_frame(stdout, HELLO, {"protocol": PROTOCOL_VERSION})
while True:
    frame = read_frame(stdin, allow_eof=True)
    if frame is None:
        raise SystemExit(0)
    if frame[0] == CHUNK:
        stdout.write(b"\x00\x00\x17")  # partial frame header, then gone
        stdout.flush()
        raise SystemExit(1)
"""

#: Worker that speaks protocol v1: the handshake must reject it.
V1_WORKER = r"""
import sys
from repro.runtime.framing import HELLO, read_frame, write_frame
read_frame(sys.stdin.buffer)
write_frame(sys.stdout.buffer, HELLO, {"protocol": 1})
import time
time.sleep(60)
"""


def _frame_bytes(*frames) -> bytes:
    buffer = io.BytesIO()
    for kind, payload in frames:
        write_frame(buffer, kind, payload)
    return buffer.getvalue()


def _parse_frames(data: bytes) -> list:
    buffer = io.BytesIO(data)
    frames = []
    while True:
        frame = read_frame(buffer, allow_eof=True)
        if frame is None:
            return frames
        frames.append(frame)


# -- read_frame contract -----------------------------------------------------


class TestReadFrameTruncation:
    def test_eof_at_boundary_with_allow_eof_is_none(self):
        assert read_frame(io.BytesIO(b""), allow_eof=True) is None

    def test_eof_at_boundary_without_allow_eof_raises(self):
        with pytest.raises(ProtocolError, match="connection closed"):
            read_frame(io.BytesIO(b""))

    def test_partial_header_raises_even_with_allow_eof(self):
        with pytest.raises(ProtocolError, match="truncated frame"):
            read_frame(io.BytesIO(b"\x00\x00\x00"), allow_eof=True)

    def test_eof_inside_body_raises_even_with_allow_eof(self):
        intact = _frame_bytes((PING, "token"))
        with pytest.raises(ProtocolError, match="truncated frame"):
            read_frame(io.BytesIO(intact[:-3]), allow_eof=True)

    def test_second_frame_truncation_still_detected(self):
        data = _frame_bytes((PING, "a"), (PING, "b"))[:-1]
        stream = io.BytesIO(data)
        assert read_frame(stream) == (PING, "a")
        with pytest.raises(ProtocolError, match="truncated frame"):
            read_frame(stream, allow_eof=True)


# -- worker serving loop (in-process, BytesIO streams) -----------------------


class TestWorkerServeErrors:
    @staticmethod
    def _serve(*frames, raw=b""):
        stdin = io.BytesIO(_frame_bytes(*frames) + raw)
        stdout = io.BytesIO()
        code = serve(stdin, stdout)
        return code, _parse_frames(stdout.getvalue())

    def test_ping_answers_pong_with_token(self):
        code, frames = self._serve(
            (HELLO, {"protocol": PROTOCOL_VERSION}),
            (PING, "tok-1"),
            (SHUTDOWN, None),
        )
        assert code == 0
        assert frames[0][0] == HELLO
        assert frames[0][1]["protocol"] == PROTOCOL_VERSION
        kind, payload = frames[1]
        assert kind == PONG
        assert payload["token"] == "tok-1"
        assert payload["protocol"] == PROTOCOL_VERSION

    def test_version_skew_hello_is_rejected(self):
        code, frames = self._serve((HELLO, {"protocol": 1}))
        assert code == 2
        kind, payload = frames[0]
        assert kind == ERROR
        assert "protocol version mismatch" in payload

    def test_heartbeat_sent_to_worker_is_an_error(self):
        # Heartbeats flow worker -> driver only; one arriving at the worker
        # means the streams are crossed and the session must die loudly.
        code, frames = self._serve(
            (HELLO, {"protocol": PROTOCOL_VERSION}),
            (HEARTBEAT, {"seq": 1}),
        )
        assert code == 2
        kind, payload = frames[-1]
        assert kind == ERROR
        assert "unexpected frame kind" in payload

    def test_truncated_mid_session_frame_is_an_error(self):
        code, frames = self._serve(
            (HELLO, {"protocol": PROTOCOL_VERSION}), raw=b"\x00\x00"
        )
        assert code == 2
        kind, payload = frames[-1]
        assert kind == ERROR
        assert "bad frame" in payload

    def test_truncated_handshake_is_an_error(self):
        stdout = io.BytesIO()
        code = serve(io.BytesIO(b"\x00\x00\x00"), stdout)
        assert code == 2
        kind, payload = _parse_frames(stdout.getvalue())[0]
        assert kind == ERROR
        assert "handshake failed" in payload


# -- worker heartbeats over a real process boundary --------------------------


class TestWorkerHeartbeat:
    def test_heartbeats_arrive_and_stop_at_kill(self):
        process = subprocess.Popen(
            local_worker_command(),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
        )
        try:
            write_frame(
                process.stdin, HELLO,
                {"protocol": PROTOCOL_VERSION, "heartbeat": 0.05},
            )
            kind, payload = read_frame(process.stdout)
            assert kind == HELLO
            assert payload["heartbeat"] == 0.05

            seqs = []
            while len(seqs) < 2:
                kind, payload = read_frame(process.stdout)
                assert kind == HEARTBEAT
                assert payload["protocol"] == PROTOCOL_VERSION
                seqs.append(payload["seq"])
            assert seqs == sorted(seqs)

            # A ping interleaves cleanly with the heartbeat side-channel.
            write_frame(process.stdin, PING, "probe")
            while True:
                kind, payload = read_frame(process.stdout)
                if kind == PONG:
                    assert payload["token"] == "probe"
                    break
                assert kind == HEARTBEAT

            # SIGKILL: the stream ends promptly (possibly after buffered
            # heartbeats), never with a partial heartbeat going unnoticed.
            process.kill()
            process.wait()
            while True:
                frame = read_frame(process.stdout, allow_eof=True)
                if frame is None:
                    break
                assert frame[0] == HEARTBEAT
        finally:
            process.kill()
            process.wait()

    def test_worker_without_heartbeat_request_stays_silent(self):
        stdin = io.BytesIO(_frame_bytes(
            (HELLO, {"protocol": PROTOCOL_VERSION}), (SHUTDOWN, None),
        ))
        stdout = io.BytesIO()
        assert serve(stdin, stdout) == 0
        frames = _parse_frames(stdout.getvalue())
        assert [kind for kind, _ in frames] == [HELLO]
        assert frames[0][1]["heartbeat"] is None


# -- cluster isolation: one bad connection never fails the sweep -------------


@pytest.fixture(scope="module")
def registry_and_jobs():
    program = build_program(workload("403.gcc"), seed=41)
    trace = TraceGenerator(program, seed=42).generate(1200)
    registry = TraceRegistry()
    trace_id = registry.register(trace)
    jobs = [
        SimulationJob(study="core", config=core_microarch(name), bug=bug,
                      trace_id=trace_id, step=256)
        for name in ("Skylake", "K8")
        for bug in (None, SerializeOpcode(Opcode.XOR))
    ]
    return registry, jobs


class TestClusterConnectionIsolation:
    def test_truncated_frame_kills_only_that_worker(self, registry_and_jobs):
        """Slot 0's first incarnation truncates a frame mid-stream; slot 1
        keeps serving, the lost chunk requeues, and a respawn completes the
        batch — the sweep never sees the ProtocolError."""
        registry, jobs = registry_and_jobs
        spawns = {"n": 0}

        def factory():
            spawns["n"] += 1
            if spawns["n"] == 1:
                return [sys.executable, "-c", TRUNCATING_WORKER]
            return local_worker_command()

        backend = ClusterBackend(
            2, command_factory=factory, heartbeat=0.05, deadline=5.0,
            backoff=0.01,
        )
        with JobEngine(backend=backend, chunk_size=1) as engine:
            results = engine.run(jobs, registry.traces)
            assert len(results) == len(jobs)
            assert engine.stats.workers_lost == 1
            assert engine.stats.chunks_requeued == 1
            assert engine.stats.workers_respawned == 1
            assert engine.stats.executed == len(jobs)

    def test_v1_worker_is_rejected_until_slots_fail(self, registry_and_jobs):
        """Version skew at the cluster handshake: every spawn speaks v1, so
        after max_respawns attempts the sweep fails loudly instead of
        wedging."""
        registry, jobs = registry_and_jobs
        backend = ClusterBackend(
            1, command_factory=lambda: [sys.executable, "-c", V1_WORKER],
            heartbeat=0.05, deadline=5.0, backoff=0.01, max_respawns=1,
        )
        with pytest.raises(BackendError, match="failed permanently"):
            with JobEngine(backend=backend, chunk_size=1) as engine:
                engine.run(jobs[:1], registry.traces)
