"""Execution-backend conformance suite, spec grammar and failure modes.

The conformance half pins the tentpole guarantee: ``serial``, ``local:N``
and ``subprocess:N`` produce bit-identical :class:`StoredResult` payloads
for the same batch, on synthetic *and* ingested traces.  The failure-mode
half covers the ways workers die: job exceptions (kept as values), worker
processes killed mid-chunk (transport failure, clean next batch), protocol
version mismatches, truncated frame streams and ``KeyboardInterrupt``.
"""

import io
import os
import signal
import sys
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path

import numpy as np
import pytest

from repro.bugs.core_bugs import SerializeOpcode
from repro.coresim.hooks import CoreBugModel
from repro.runtime import (
    BackendError,
    JobEngine,
    JobFailedError,
    LocalBackend,
    ProtocolError,
    RemoteBackend,
    SerialBackend,
    SimulationJob,
    TraceRegistry,
    parse_backend,
    spec_for_jobs,
)
from repro.runtime.backends import remote
from repro.runtime.backends.remote import (
    CHUNK,
    ERROR,
    HELLO,
    PROTOCOL_VERSION,
    RESULT,
    SHUTDOWN,
    TRACES,
    WorkerConnection,
    check_hello,
    read_frame,
    write_frame,
)
from repro.runtime.execution import ChunkFailure, run_chunk_items
from repro.runtime.worker import serve
from repro.uarch import core_microarch, memory_microarch
from repro.workloads import TraceGenerator, build_program, workload
from repro.workloads.ingest import discover_traces
from repro.workloads.isa import Opcode

DATA_DIR = Path(__file__).resolve().parent / "data"

#: Remote worker processes must be able to unpickle classes defined in this
#: module, so its directory joins PYTHONPATH for spawned workers.
TESTS_DIR = str(Path(__file__).resolve().parent)


class ExplodingBug(CoreBugModel):
    """Picklable bug model that fails as soon as simulation starts."""

    name = "exploding"

    def on_simulation_start(self, config) -> None:
        raise RuntimeError("boom at simulation start")


class WorkerKillerBug(CoreBugModel):
    """Kills the worker process outright: a transport failure, not a job one."""

    name = "worker-killer"

    def on_simulation_start(self, config) -> None:
        os.kill(os.getpid(), signal.SIGKILL)


@pytest.fixture()
def worker_env(monkeypatch):
    """Let spawned repro-worker processes import this test module."""
    existing = os.environ.get("PYTHONPATH", "")
    monkeypatch.setenv(
        "PYTHONPATH",
        os.pathsep.join(p for p in (existing, TESTS_DIR) if p),
    )


@pytest.fixture(scope="module")
def tiny_trace():
    program = build_program(workload("403.gcc"), seed=21)
    return TraceGenerator(program, seed=22).generate(1200)


@pytest.fixture(scope="module")
def registry(tiny_trace):
    registry = TraceRegistry()
    registry.register(tiny_trace)
    return registry


def _core_jobs(registry, trace, configs=("Skylake", "K8"), step=256):
    trace_id = registry.register(trace)
    return [
        SimulationJob(study="core", config=core_microarch(name), bug=bug,
                      trace_id=trace_id, step=step)
        for name in configs
        for bug in (None, SerializeOpcode(Opcode.XOR))
    ]


def _assert_stored_equal(first, second):
    assert len(first) == len(second)
    for a, b in zip(first, second):
        assert a.study == b.study
        assert a.config_name == b.config_name
        assert a.bug_name == b.bug_name
        assert a.instructions == b.instructions
        assert a.cycles == b.cycles
        assert a.amat == b.amat
        assert a.step == b.step
        assert np.array_equal(a.ipc, b.ipc)
        assert set(a.counters) == set(b.counters)
        for name in a.counters:
            assert np.array_equal(a.counters[name], b.counters[name]), name


# -- conformance: serial == local == subprocess ------------------------------


@pytest.fixture(scope="module")
def conformance_batch(registry, tiny_trace):
    """Synthetic core + memory jobs plus jobs on an ingested golden trace."""
    jobs = _core_jobs(registry, tiny_trace)
    jobs.append(
        SimulationJob(
            study="memory", config=memory_microarch("Skylake-mem"), bug=None,
            trace_id=registry.register(tiny_trace), step=500,
        )
    )
    ingested = discover_traces(DATA_DIR, "champsim")[0]
    ingested_id = ingested.register(registry)
    jobs.extend(
        SimulationJob(study="core", config=core_microarch("Skylake"), bug=bug,
                      trace_id=ingested_id, step=512)
        for bug in (None, SerializeOpcode(Opcode.SUB))
    )
    return jobs


@pytest.fixture(scope="module")
def serial_reference(conformance_batch, registry):
    return JobEngine(backend="serial").run(conformance_batch, registry.traces)


class TestBackendConformance:
    @pytest.mark.parametrize("spec", ["local:2", "subprocess:2"])
    def test_bit_identical_to_serial(
        self, spec, conformance_batch, registry, serial_reference
    ):
        with JobEngine(backend=spec, chunk_size=2) as engine:
            results = engine.run(conformance_batch, registry.traces)
        _assert_stored_equal(serial_reference, results)

    def test_subprocess_ships_each_trace_once_per_worker(
        self, registry, tiny_trace
    ):
        jobs = _core_jobs(registry, tiny_trace)
        with JobEngine(backend="subprocess:2", chunk_size=1) as engine:
            engine.run(jobs, registry.traces)
            engine.run(jobs, registry.traces)
            # Two batches, one trace, two workers: the trace crossed the
            # wire at most once per worker no matter how chunks landed.
            assert 1 <= engine.stats.traces_shipped <= 2
            assert engine.stats.pool_reuses == 1

    def test_dropped_engine_reaps_subprocess_workers(self, registry, tiny_trace):
        """A garbage-collected engine must not leak worker processes."""
        import gc

        jobs = _core_jobs(registry, tiny_trace, configs=("Skylake",))
        engine = JobEngine(backend="subprocess:2", chunk_size=1)
        engine.run(jobs, registry.traces)
        processes = [c.process for c in engine.backend._connections]
        assert all(p.poll() is None for p in processes)
        del engine
        gc.collect()
        for process in processes:  # the backend finalizer reaps them
            process.wait(timeout=10)

    def test_jobs_sugar_still_selects_local_backend(self):
        assert JobEngine(jobs=1).backend.spec == "serial"
        engine = JobEngine(jobs=3)
        assert engine.backend.spec == "local:3"
        assert engine.jobs == 3

    def test_single_pending_job_still_goes_remote(self, registry, tiny_trace):
        """A remote backend was chosen to place work elsewhere: even a
        one-job batch must run through it, not inline in the driver."""
        job = _core_jobs(registry, tiny_trace, configs=("Skylake",))[0]
        with JobEngine(backend="subprocess:1") as engine:
            results = engine.run([job], registry.traces)
        assert engine.stats.pool_creates == 1  # the worker actually spawned
        assert results[0].cycles > 0
        # Local backends keep the seed behaviour: one job runs inline.
        with JobEngine(jobs=2) as local:
            local.run([job], registry.traces)
        assert local.stats.pool_creates == 0

    def test_dead_idle_worker_triggers_rebuild_on_next_batch(
        self, registry, tiny_trace
    ):
        """A worker lost between batches (e.g. its transport failure was
        cancelled away with a failed batch) must not shrink capacity
        silently: the next start() health-checks and rebuilds."""
        jobs = _core_jobs(registry, tiny_trace)
        with JobEngine(backend="subprocess:2", chunk_size=1) as engine:
            engine.run(jobs, registry.traces)
            victim = engine.backend._connections[1].process
            victim.kill()
            victim.wait()  # make sure poll() observes the death
            results = engine.run(jobs, registry.traces)
            assert all(r.cycles > 0 for r in results)
            assert engine.stats.pool_creates == 2  # rebuilt, not reused


# -- spec grammar ------------------------------------------------------------


class TestBackendSpecs:
    def test_parse_known_specs(self):
        assert isinstance(parse_backend("serial"), SerialBackend)
        local = parse_backend("local:4")
        assert isinstance(local, LocalBackend)
        assert local.slots == 4 and local.spec == "local:4"
        sub = parse_backend("subprocess:3")
        assert isinstance(sub, RemoteBackend)
        assert sub.slots == 3 and sub.remote
        assert parse_backend("subprocess").slots == 2  # documented default

    def test_parse_ssh_hosts(self):
        backend = parse_backend("ssh://hostA:2,hostB:3")
        assert backend.slots == 5
        assert backend.spec == "ssh://hostA:2,hostB:3"
        commands = [c.command for c in backend._connections]
        assert all(command[0] == "ssh" for command in commands)
        assert sum("hostA" in command for command in commands) == 2
        assert sum("hostB" in command for command in commands) == 3
        assert parse_backend("ssh://solo").slots == 1  # default one per host

    def test_backend_instance_passes_through(self):
        backend = SerialBackend()
        assert parse_backend(backend) is backend
        assert JobEngine(backend=backend).backend is backend

    @pytest.mark.parametrize("spec", [
        "quantum", "local:x", "local:0", "subprocess:-1", "ssh://", "ssh://:4",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_backend(spec)

    def test_jobs_and_backend_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            JobEngine(jobs=2, backend="serial")

    def test_spec_for_jobs(self):
        assert spec_for_jobs(1) == "serial"
        assert spec_for_jobs(4) == "local:4"

    def test_backend_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "local:3")
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert JobEngine().backend.spec == "local:3"  # REPRO_BACKEND wins
        monkeypatch.delenv("REPRO_BACKEND")
        assert JobEngine().backend.spec == "local:7"  # REPRO_JOBS sugar
        # Explicit arguments beat the environment.
        assert JobEngine(jobs=1).backend.spec == "serial"
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        assert JobEngine(backend="local:2").backend.spec == "local:2"


# -- wire protocol units -----------------------------------------------------


class TestFrameProtocol:
    def test_round_trip(self):
        buffer = io.BytesIO()
        write_frame(buffer, TRACES, {"abc": [1, 2, 3]})
        buffer.seek(0)
        assert read_frame(buffer) == (TRACES, {"abc": [1, 2, 3]})

    def test_eof_at_boundary(self):
        assert read_frame(io.BytesIO(), allow_eof=True) is None
        with pytest.raises(ProtocolError, match="closed"):
            read_frame(io.BytesIO())

    def test_truncated_header_and_body(self):
        buffer = io.BytesIO()
        write_frame(buffer, HELLO, {"protocol": 1})
        whole = buffer.getvalue()
        for cut in (4, len(whole) - 3):  # inside header, inside body
            with pytest.raises(ProtocolError, match="truncated"):
                read_frame(io.BytesIO(whole[:cut]))

    def test_oversized_frame_rejected(self):
        garbage = io.BytesIO(b"garbage!")  # 8 ASCII bytes = a huge length
        with pytest.raises(ProtocolError, match="oversized"):
            read_frame(garbage)

    def test_undecodable_body_rejected(self):
        import struct

        body = b"notpickle"
        stream = io.BytesIO(struct.pack(">Q", len(body)) + body)
        with pytest.raises(ProtocolError, match="undecodable"):
            read_frame(stream)

    def test_check_hello_version_mismatch(self):
        check_hello({"protocol": PROTOCOL_VERSION}, side="worker")
        with pytest.raises(ProtocolError, match="version mismatch"):
            check_hello({"protocol": PROTOCOL_VERSION + 1}, side="worker")
        with pytest.raises(ProtocolError, match="version mismatch"):
            check_hello("nonsense", side="worker")


class TestWorkerServe:
    """Drive repro.runtime.worker.serve over in-memory streams."""

    def _session(self, frames):
        stdin = io.BytesIO()
        for kind, payload in frames:
            write_frame(stdin, kind, payload)
        stdin.seek(0)
        stdout = io.BytesIO()
        code = serve(stdin, stdout)
        stdout.seek(0)
        replies = []
        while True:
            frame = read_frame(stdout, allow_eof=True)
            if frame is None:
                return code, replies
            replies.append(frame)

    def test_full_session(self, registry, tiny_trace):
        trace_id = registry.register(tiny_trace)
        job = SimulationJob(study="core", config=core_microarch("Skylake"),
                            bug=None, trace_id=trace_id, step=256)
        code, replies = self._session([
            (HELLO, {"protocol": PROTOCOL_VERSION}),
            (TRACES, {trace_id: tiny_trace}),
            (CHUNK, (7, [(0, job)])),
            (SHUTDOWN, None),
        ])
        assert code == 0
        assert replies[0][0] == HELLO
        assert replies[0][1]["protocol"] == PROTOCOL_VERSION
        kind, (tag, (results, failure)) = replies[1]
        assert kind == RESULT and tag == 7 and failure is None
        (index, stored), = results
        assert index == 0 and stored.cycles > 0

    def test_version_mismatch_rejected(self):
        code, replies = self._session([(HELLO, {"protocol": 999})])
        assert code == 2
        assert replies[0][0] == ERROR
        assert "version mismatch" in replies[0][1]

    def test_unexpected_frame_kind_rejected(self):
        code, replies = self._session([
            (HELLO, {"protocol": PROTOCOL_VERSION}),
            ("teleport", None),
        ])
        assert code == 2
        assert replies[-1][0] == ERROR

    def test_eof_is_a_clean_exit(self):
        code, replies = self._session([(HELLO, {"protocol": PROTOCOL_VERSION})])
        assert code == 0 and replies[0][0] == HELLO

    def test_chunk_failure_travels_as_value(self, registry, tiny_trace):
        trace_id = registry.register(tiny_trace)
        job = SimulationJob(study="core", config=core_microarch("Skylake"),
                            bug=ExplodingBug(), trace_id=trace_id, step=256)
        results, failure = run_chunk_items([(0, job)], {trace_id: tiny_trace})
        assert results == []
        assert isinstance(failure, ChunkFailure)
        assert "boom at simulation start" in failure.remote_traceback


# -- failure modes -----------------------------------------------------------


class TestJobFailures:
    @pytest.mark.parametrize("spec", ["serial", "local:2", "subprocess:2"])
    def test_job_exception_raises_and_backend_survives(
        self, spec, registry, tiny_trace, worker_env
    ):
        trace_id = registry.register(tiny_trace)
        bad = SimulationJob(study="core", config=core_microarch("Skylake"),
                            bug=ExplodingBug(), trace_id=trace_id, step=256)
        good = _core_jobs(registry, tiny_trace, configs=("Skylake",))
        with JobEngine(backend=spec, chunk_size=1) as engine:
            with pytest.raises(JobFailedError) as excinfo:
                engine.run(good + [bad], registry.traces)
            assert "boom at simulation start" in str(excinfo.value)
            assert "exploding" in excinfo.value.description
            # The failure was the job's fault: workers stay warm and the
            # next batch runs clean on the same engine.
            results = engine.run(good, registry.traces)
            assert all(r.cycles > 0 for r in results)
            if spec != "serial":
                assert engine.stats.pool_creates == 1
                assert engine.stats.pool_reuses >= 1


class TestWorkerDeath:
    def test_local_worker_killed_mid_chunk(self, registry, tiny_trace):
        trace_id = registry.register(tiny_trace)
        killer = SimulationJob(study="core", config=core_microarch("Skylake"),
                               bug=WorkerKillerBug(), trace_id=trace_id, step=256)
        good = _core_jobs(registry, tiny_trace)
        with JobEngine(jobs=2, chunk_size=1) as engine:
            with pytest.raises(BrokenProcessPool):
                engine.run(good + [killer], registry.traces)
            # The pool was torn down; the next batch gets a fresh one.
            results = engine.run(good, registry.traces)
            assert all(r.cycles > 0 for r in results)
            assert engine.stats.pool_creates == 2

    def test_subprocess_worker_killed_mid_chunk(
        self, registry, tiny_trace, worker_env
    ):
        trace_id = registry.register(tiny_trace)
        killer = SimulationJob(study="core", config=core_microarch("Skylake"),
                               bug=WorkerKillerBug(), trace_id=trace_id, step=256)
        good = _core_jobs(registry, tiny_trace)
        with JobEngine(backend="subprocess:2", chunk_size=1) as engine:
            with pytest.raises(BackendError):
                engine.run(good + [killer], registry.traces)
            backend = engine.backend
            assert not backend._live
            assert all(c.process is None for c in backend._connections)
            results = engine.run(good, registry.traces)
            assert all(r.cycles > 0 for r in results)
            assert engine.stats.pool_creates == 2


class TestProtocolFailures:
    def test_version_mismatch_end_to_end(self, registry, tiny_trace, monkeypatch):
        monkeypatch.setattr(remote, "PROTOCOL_VERSION", 999)
        jobs = _core_jobs(registry, tiny_trace, configs=("Skylake",))
        with JobEngine(backend="subprocess:1", chunk_size=1) as engine:
            with pytest.raises(ProtocolError, match="handshake|version"):
                engine.run(jobs, registry.traces)

    # A fake worker that exits early may already be gone when the driver
    # writes its handshake, so BrokenPipeError is an accepted alternative
    # to the ProtocolError the read side raises.

    def test_garbage_worker_stream_is_oversized_frame(self):
        connection = WorkerConnection(
            [sys.executable, "-c", "print('garbage!')"], label="garbage"
        )
        with pytest.raises((ProtocolError, BrokenPipeError)):
            connection.start()
        assert connection.process is None

    def test_truncated_worker_stream(self):
        code = (
            "import struct, sys; "
            "sys.stdout.buffer.write(struct.pack('>Q', 100) + b'xx')"
        )
        connection = WorkerConnection([sys.executable, "-c", code], label="trunc")
        with pytest.raises((ProtocolError, BrokenPipeError)):
            connection.start()

    def test_worker_that_exits_immediately(self):
        connection = WorkerConnection(
            [sys.executable, "-c", "pass"], label="quitter"
        )
        with pytest.raises((ProtocolError, BrokenPipeError)):
            connection.start()


class TestKeyboardInterrupt:
    @pytest.mark.parametrize("spec", ["local:2", "subprocess:2"])
    def test_interrupt_cancels_and_tears_down(self, spec, registry, tiny_trace):
        jobs = _core_jobs(registry, tiny_trace, configs=("Skylake", "K8"))
        calls = []

        def interrupting_progress(done, total):
            calls.append((done, total))
            if done > 0:
                raise KeyboardInterrupt

        engine = JobEngine(backend=spec, chunk_size=1,
                           progress=interrupting_progress)
        with pytest.raises(KeyboardInterrupt):
            engine.run(jobs, registry.traces)
        backend = engine.backend
        if spec.startswith("local"):
            assert backend._pool is None
            assert not backend._futures
        else:
            assert not backend._live
            assert all(c.process is None for c in backend._connections)
        # The engine is reusable: the next batch brings workers back up.
        engine.progress = None
        results = engine.run(jobs, registry.traces)
        assert all(r.cycles > 0 for r in results)
        engine.close()
