"""Tests for microarchitecture configurations, ports and presets."""

import pytest

from repro.uarch import (
    CacheConfig,
    CORE_MICROARCHES,
    MEMORY_MICROARCHES,
    all_core_microarches,
    core_microarch,
    core_set,
    kb,
    mb,
    make_ports,
    memory_microarch,
    memory_set,
)
from repro.uarch.ports import A, BR, LD, ST, UnitType
from repro.workloads import OpClass


class TestCacheConfig:
    def test_num_sets(self):
        cache = CacheConfig(size=kb(32), associativity=8, latency=4)
        assert cache.num_sets == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size=0, associativity=8, latency=4)
        with pytest.raises(ValueError):
            CacheConfig(size=1000, associativity=8, latency=4)  # not multiple of line
        with pytest.raises(ValueError):
            CacheConfig(size=kb(1), associativity=7, latency=1)  # 16 lines not 7-way


class TestPorts:
    def test_every_core_preset_can_execute_every_class(self):
        for config in all_core_microarches():
            for op_class in OpClass:
                assert config.ports.ports_for(op_class), (config.name, op_class)

    def test_make_ports_rejects_uncovered_classes(self):
        with pytest.raises(ValueError):
            make_ports([A, BR])  # no load/store/FP units anywhere

    def test_port_capability(self):
        ports = make_ports([A, BR], [LD], [ST], [UnitType.FP_UNIT, UnitType.INT_MULT,
                                                 UnitType.DIVIDER, UnitType.VECTOR,
                                                 UnitType.FP_MULT])
        assert ports.ports[1].can_execute(OpClass.LOAD)
        assert not ports.ports[1].can_execute(OpClass.STORE)
        histogram = ports.capability_histogram()
        assert histogram[OpClass.INT_ALU] == 1


class TestPresets:
    def test_twenty_core_presets_partitioned(self):
        assert len(CORE_MICROARCHES) == 20
        assert len(core_set("I")) == 10
        assert len(core_set("II")) == 3
        assert len(core_set("III")) == 3
        assert len(core_set("IV")) == 4
        assert all(cfg.is_real for cfg in core_set("IV"))

    def test_table2_spot_checks(self):
        skylake = core_microarch("Skylake")
        assert skylake.clock_ghz == 4.0
        assert skylake.rob_size == 256
        assert skylake.l2.size == kb(256) and skylake.l2.associativity == 4
        assert skylake.l3 is not None and skylake.l3.size == mb(8)
        k8 = core_microarch("K8")
        assert k8.l3 is None and k8.width == 3 and k8.rob_size == 24
        cedarview = core_microarch("Cedarview")
        assert cedarview.div_latency == 30

    def test_feature_vector_contains_knobs(self):
        features = core_microarch("Broadwell").feature_vector()
        assert features["uarch.width"] == 4.0
        assert features["uarch.l1_size_kb"] == 32.0
        assert features["uarch.l3_size_kb"] == 64 * 1024.0

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError):
            core_microarch("Pentium4")
        with pytest.raises(KeyError):
            memory_microarch("nope")
        with pytest.raises(ValueError):
            core_set("V")

    def test_memory_presets(self):
        assert len(MEMORY_MICROARCHES) == 12
        assert len(memory_set("IV")) == 2
        sky = memory_microarch("Skylake-mem")
        assert sky.prefetcher == "spp"
        assert "mem.llc_size_kb" in sky.feature_vector()

    def test_derived_structure_sizes(self):
        cfg = core_microarch("Skylake")
        assert cfg.iq_size >= 12 and cfg.lsq_size >= 8
        assert cfg.num_phys_regs > cfg.rob_size
