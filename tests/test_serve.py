"""Serving-layer suite: model registry integrity and the detection daemon.

The registry half pins the train-once lifecycle: pickle round-trips are
lossless, training provenance is deterministic and content-addressed, and
corrupt or schema-tampered registry files refuse to load instead of serving
wrong verdicts.  The daemon half pins the serving guarantees: concurrent
clients get verdicts bit-identical to the offline ``SimulationCache`` path,
repeated batches are served entirely warm (``executed == 0``), protocol
garbage ends one connection but never the daemon, and SIGTERM drains a real
``repro-serve`` subprocess to a clean exit 0.
"""

import os
import pickle
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.bugs.registry import core_bug_suite
from repro.detect.dataset import SimulationCache
from repro.experiments.common import ExperimentContext
from repro.runtime import JobEngine, ResultStore
from repro.runtime.framing import (
    HELLO,
    PROTOCOL_VERSION,
    read_frame,
    write_frame,
)
from repro.serve import (
    DetectionServer,
    RegistryError,
    ServeClient,
    ServingSession,
    load_model,
    offline_verdicts,
    save_model,
    train_model,
)
from repro.serve.registry import (
    REGISTRY_FORMAT_VERSION,
    _training_digest,
    training_job_keys,
)
from repro.uarch import core_microarch

# -- fixtures -----------------------------------------------------------------


def _smoke_setup(context):
    """A trimmed smoke-scale detection setup (2 probes keeps training fast)."""
    return context.detection_setup(probes=context.probes[:2])


@pytest.fixture(scope="module")
def model():
    """One trained registered model, shared by the whole module."""
    with ExperimentContext(scale="smoke") as context:
        return train_model(_smoke_setup(context), name="test")


@pytest.fixture(scope="module")
def model_path(model, tmp_path_factory):
    path = tmp_path_factory.mktemp("registry") / "model.pkl"
    save_model(model, path)
    return path


@pytest.fixture(scope="module")
def request_items():
    """Three designs under test: one clean, two bugged."""
    suite = core_bug_suite()
    return [
        (core_microarch("Skylake"), None),
        (core_microarch("Skylake"), suite["Serialized"][0]),
        (core_microarch("Ivybridge"), suite["IssueXOnlyIfOldest"][0]),
    ]


@pytest.fixture(scope="module")
def offline_rows(model, request_items):
    """The offline reference path's verdict rows for the shared items."""
    with JobEngine(jobs=1) as engine:
        cache = SimulationCache(step_cycles=model.schema.step_cycles, engine=engine)
        verdicts = offline_verdicts(model, cache, request_items)
    return [v.row() for v in verdicts]


def _strip_serving_columns(row):
    """Drop the serving-cost columns a daemon adds to each verdict row."""
    return {
        k: v
        for k, v in row.items()
        if k not in ("index", "executed", "store_hits", "elapsed_ms")
    }


# -- registry: round trip and provenance --------------------------------------


def test_registry_round_trip_is_lossless(model, model_path):
    loaded = load_model(model_path)
    assert loaded.name == model.name
    assert loaded.schema == model.schema
    assert loaded.schema.digest() == model.schema.digest()
    assert loaded.provenance == model.provenance
    assert [p.name for p in loaded.probes] == [p.name for p in model.probes]
    assert sorted(loaded.models) == sorted(model.models)


def test_round_tripped_model_scores_identically(model, model_path, request_items):
    loaded = load_model(model_path)
    session_a = ServingSession(model)
    session_b = ServingSession(loaded)
    for config, bug in request_items:
        a = session_a.verdict_for(0, config, bug).verdict
        b = session_b.verdict_for(0, config, bug).verdict
        assert a.score == b.score
        assert a.errors == b.errors
        assert a.detected == b.detected


def test_training_provenance_is_content_addressed(model):
    """The recorded digest is recomputable from an untrained, equal setup."""
    with ExperimentContext(scale="smoke") as context:
        setup = _smoke_setup(context)
        keys = training_job_keys(setup, model.schema.step_cycles)
    assert model.provenance["training_jobs"] == len(keys)
    assert model.provenance["training_digest"] == _training_digest(keys)
    assert model.provenance["bug_types"] == sorted(setup.bug_suite)


# -- registry: rejection paths ------------------------------------------------


def test_load_rejects_garbage_bytes(tmp_path):
    path = tmp_path / "garbage.pkl"
    path.write_bytes(b"this is not a pickle at all")
    with pytest.raises(RegistryError, match="corrupt"):
        load_model(path)


def test_load_rejects_truncated_file(model_path, tmp_path):
    whole = Path(model_path).read_bytes()
    path = tmp_path / "truncated.pkl"
    path.write_bytes(whole[: len(whole) // 2])
    with pytest.raises(RegistryError, match="corrupt"):
        load_model(path)


def test_load_rejects_wrong_payload_type(tmp_path):
    path = tmp_path / "list.pkl"
    with open(path, "wb") as handle:
        pickle.dump([1, 2, 3], handle)
    with pytest.raises(RegistryError, match="not a model registry"):
        load_model(path)


def test_load_rejects_unknown_format_version(model_path, tmp_path):
    with open(model_path, "rb") as handle:
        record = pickle.load(handle)
    record["format"] = REGISTRY_FORMAT_VERSION + 1
    path = tmp_path / "future.pkl"
    with open(path, "wb") as handle:
        pickle.dump(record, handle)
    with pytest.raises(RegistryError, match="format"):
        load_model(path)


def test_load_rejects_tampered_schema(model_path, tmp_path):
    with open(model_path, "rb") as handle:
        record = pickle.load(handle)
    record["schema"]["step_cycles"] = record["schema"]["step_cycles"] + 1
    path = tmp_path / "tampered.pkl"
    with open(path, "wb") as handle:
        pickle.dump(record, handle)
    with pytest.raises(RegistryError, match="schema mismatch"):
        load_model(path)


def test_load_rejects_drifted_payload(model_path, tmp_path):
    """Payload drift (a probe's counter set changed) is caught too."""
    with open(model_path, "rb") as handle:
        record = pickle.load(handle)
    drifted = record["model"]
    drifted.probes[0].counters.append("core.fake_counter")
    path = tmp_path / "drifted.pkl"
    with open(path, "wb") as handle:
        pickle.dump(record, handle)
    with pytest.raises(RegistryError, match="schema mismatch"):
        load_model(path)


# -- daemon: serving guarantees -----------------------------------------------


def test_concurrent_clients_match_offline(model, request_items, offline_rows):
    """4 concurrent clients, same batch: every verdict bit-identical to the
    offline SimulationCache path, despite racing on one shared session."""
    results = {}
    errors = []

    def one_client(worker, host, port):
        try:
            with ServeClient(host, port) as client:
                results[worker] = list(client.probe_batch(request_items))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append((worker, exc))

    with DetectionServer(model).start() as server:
        host, port = server.address
        threads = [
            threading.Thread(target=one_client, args=(worker, host, port))
            for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
    assert not errors
    assert sorted(results) == [0, 1, 2, 3]
    for worker, rows in results.items():
        stripped = [_strip_serving_columns(row) for row in rows]
        assert stripped == offline_rows, f"client {worker} diverged from offline"


def test_repeated_batch_is_served_warm(model, request_items):
    with DetectionServer(model).start() as server:
        with ServeClient(*server.address) as client:
            list(client.probe_batch(request_items))
            first = client.last_batch
            list(client.probe_batch(request_items))
            second = client.last_batch
    assert first["executed"] > 0
    assert second["executed"] == 0


def test_store_backed_daemon_restarts_warm(model, request_items, tmp_path):
    """A fresh daemon over a populated store replays instead of simulating."""
    store_dir = tmp_path / "store"
    with DetectionServer(model, store=ResultStore(store_dir)).start() as server:
        with ServeClient(*server.address) as client:
            list(client.probe_batch(request_items))
            assert client.last_batch["executed"] > 0
    with DetectionServer(model, store=ResultStore(store_dir)).start() as server:
        with ServeClient(*server.address) as client:
            list(client.probe_batch(request_items))
            summary = client.last_batch
    assert summary["executed"] == 0
    assert summary["store_hits"] > 0


def test_ping_and_stats_report_daemon_state(model, request_items):
    with DetectionServer(model).start() as server:
        with ServeClient(*server.address) as client:
            pong = client.ping()
            assert pong["protocol"] == PROTOCOL_VERSION
            assert pong["model"] == model.name
            assert pong["uptime_seconds"] >= 0
            assert pong["stats"]["verdicts"] == 0
            list(client.probe_batch(request_items))
            stats = client.stats()
    assert stats["stats"]["verdicts"] == len(request_items)
    assert stats["stats"]["requests"] == 1
    assert stats["memory_entries"] > 0
    assert stats["store_entries"] is None  # no persistent store attached


def test_shutdown_request_stops_daemon(model):
    server = DetectionServer(model).start()
    with ServeClient(*server.address) as client:
        payload = client.shutdown()
    assert "uptime_seconds" in payload
    deadline = time.time() + 10
    while not server._shutdown.is_set() and time.time() < deadline:
        time.sleep(0.05)
    assert server._shutdown.is_set()
    server.close()


# -- daemon: protocol resilience ----------------------------------------------


def _raw_connection(server):
    sock = socket.create_connection(server.address, timeout=10)
    return sock, sock.makefile("rb"), sock.makefile("wb")


def test_version_mismatch_hello_is_rejected(model, request_items):
    with DetectionServer(model).start() as server:
        sock, reader, writer = _raw_connection(server)
        try:
            write_frame(writer, HELLO, {"protocol": PROTOCOL_VERSION + 41})
            kind, payload = read_frame(reader)
            assert kind == "error"
            assert "version mismatch" in payload
        finally:
            sock.close()
        _assert_daemon_still_serves(server, request_items)


def test_oversized_frame_kills_connection_not_daemon(model, request_items):
    with DetectionServer(model).start() as server:
        sock, reader, writer = _raw_connection(server)
        try:
            write_frame(writer, HELLO, {"protocol": PROTOCOL_VERSION})
            assert read_frame(reader)[0] == HELLO
            # A length prefix claiming a petabyte frame: stream is garbage.
            writer.write(struct.pack(">Q", 1 << 50))
            writer.flush()
            kind, payload = read_frame(reader)
            assert kind == "error"
            assert "oversized" in payload
        finally:
            sock.close()
        _assert_daemon_still_serves(server, request_items)


def test_undecodable_frame_kills_connection_not_daemon(model, request_items):
    with DetectionServer(model).start() as server:
        sock, reader, writer = _raw_connection(server)
        try:
            write_frame(writer, HELLO, {"protocol": PROTOCOL_VERSION})
            assert read_frame(reader)[0] == HELLO
            body = b"\x93not pickle"
            writer.write(struct.pack(">Q", len(body)) + body)
            writer.flush()
            kind, payload = read_frame(reader)
            assert kind == "error"
            assert "bad frame" in payload
        finally:
            sock.close()
        _assert_daemon_still_serves(server, request_items)


def test_truncated_frame_kills_connection_not_daemon(model, request_items):
    with DetectionServer(model).start() as server:
        sock, reader, writer = _raw_connection(server)
        try:
            write_frame(writer, HELLO, {"protocol": PROTOCOL_VERSION})
            assert read_frame(reader)[0] == HELLO
            # Claim 64 bytes, send 5, then half-close: EOF inside a frame.
            writer.write(struct.pack(">Q", 64) + b"stub!")
            writer.flush()
            sock.shutdown(socket.SHUT_WR)
            # Best-effort error frame (or clean close) — never a hang.
            read_frame(reader, allow_eof=True)
        finally:
            sock.close()
        _assert_daemon_still_serves(server, request_items)


def _assert_daemon_still_serves(server, request_items):
    with ServeClient(*server.address) as client:
        rows = list(client.probe_batch(request_items[:1]))
    assert len(rows) == 1


# -- daemon: subprocess lifecycle ---------------------------------------------


def test_sigterm_drains_subprocess_to_exit_zero(model_path, tmp_path):
    """A real repro-serve process drains on SIGTERM and exits 0."""
    port_file = tmp_path / "port"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve.server",
            "run",
            str(model_path),
            "--port-file",
            str(port_file),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        deadline = time.time() + 60
        while not port_file.exists() and time.time() < deadline:
            if process.poll() is not None:
                pytest.fail(f"daemon died on startup:\n{process.stdout.read()}")
            time.sleep(0.1)
        port = int(port_file.read_text().strip())
        with ServeClient("127.0.0.1", port) as client:
            pong = client.ping()
            assert pong["protocol"] == PROTOCOL_VERSION
        process.send_signal(signal.SIGTERM)
        output, _ = process.communicate(timeout=60)
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup on failure
            process.kill()
            process.communicate()
    assert process.returncode == 0, f"daemon exited {process.returncode}:\n{output}"
    assert "listening on" in output
    assert "drained" in output
