"""Golden counter-equivalence suite for the optimized simulation hot path.

The optimized :class:`~repro.coresim.pipeline.O3Pipeline` (pre-decoded
traces, ready-queue issue, hoisted bug hooks, batched counters, idle
fast-forward) must be *bit-identical* to the frozen seed implementation in
:mod:`repro.coresim._reference`: same cycle counts, same sampled counter
names and same sampled values, for every microarchitecture preset and under
every class of injected bug.  These tests are the contract that lets the hot
path keep changing; see docs/PERFORMANCE.md.
"""

import pickle

import numpy as np
import pytest

from repro.bugs.registry import core_bug_suite
from repro.coresim import O3Pipeline, simulate_trace
from repro.coresim._reference import ReferenceO3Pipeline, reference_simulate_trace
from repro.coresim.hooks import CoreBugModel
from repro.detect.probe import build_probes
from repro.memsim import simulate_memory_trace
from repro.runtime import JobEngine, SimulationJob, TraceRegistry
from repro.uarch import all_core_microarches, core_microarch, memory_microarch
from repro.workloads import (
    DecodedTrace,
    MicroOp,
    Opcode,
    TraceGenerator,
    build_program,
    decode_trace,
    workload,
)


def _assert_identical_series(a, b, context=""):
    assert a.step_cycles == b.step_cycles, context
    assert set(a.counters) == set(b.counters), (
        context,
        set(a.counters) ^ set(b.counters),
    )
    assert np.array_equal(a.ipc, b.ipc), context
    for name in a.counters:
        assert np.array_equal(a.counters[name], b.counters[name]), (context, name)


def _assert_identical_results(a, b, context=""):
    assert a.cycles == b.cycles, context
    assert a.instructions == b.instructions, context
    _assert_identical_series(a.series, b.series, context)


@pytest.fixture(scope="module")
def sjeng_trace():
    program = build_program(workload("458.sjeng"), seed=5)
    return TraceGenerator(program, seed=6).generate(2500)


class TestDecodedTrace:
    def test_round_trips_through_pickle(self, gcc_trace):
        decoded = decode_trace(gcc_trace)
        clone = pickle.loads(pickle.dumps(decoded))
        assert clone.uops == list(gcc_trace)
        assert clone.digest == decoded.digest

    def test_pickles_smaller_than_object_list(self, gcc_trace):
        decoded = decode_trace(gcc_trace)
        assert len(pickle.dumps(decoded)) < len(pickle.dumps(list(gcc_trace))) / 1.5

    def test_decode_is_memoised_by_identity(self, gcc_trace):
        assert decode_trace(gcc_trace) is decode_trace(gcc_trace)
        assert decode_trace(list(gcc_trace)) is not decode_trace(gcc_trace)

    def test_optional_field_edge_cases_round_trip(self):
        odd = [
            MicroOp(opcode=Opcode.LOAD, srcs=(), dest=0, pc=0, address=0),
            MicroOp(opcode=Opcode.BRANCH, srcs=(5, 3), dest=None, pc=2**40,
                    taken=False, target=-8, indirect=True),
            MicroOp(opcode=Opcode.NOP, srcs=(), dest=None, pc=4, size=16,
                    block_id=9),
        ]
        clone = pickle.loads(pickle.dumps(decode_trace(odd)))
        assert clone.uops == odd

    def test_sequence_protocol(self, gcc_trace):
        decoded = decode_trace(gcc_trace)
        assert len(decoded) == len(gcc_trace)
        assert decoded[0] == gcc_trace[0]
        assert list(decoded)[:5] == gcc_trace[:5]

    def test_simulation_identical_for_decoded_and_legacy_input(
        self, skylake, gcc_trace
    ):
        legacy = simulate_trace(skylake, list(gcc_trace[:1500]), step_cycles=256)
        decoded = simulate_trace(
            skylake, decode_trace(gcc_trace[:1500]), step_cycles=256
        )
        shipped = simulate_trace(
            skylake,
            pickle.loads(pickle.dumps(decode_trace(gcc_trace[:1500]))),
            step_cycles=256,
        )
        _assert_identical_results(legacy, decoded, "decoded-vs-legacy")
        _assert_identical_results(legacy, shipped, "shipped-vs-legacy")


class TestGoldenEquivalence:
    """Optimized pipeline vs the frozen seed, bit for bit."""

    def test_every_preset_bug_free(self, gcc_trace):
        trace = gcc_trace[:1800]
        for config in all_core_microarches():
            seed = reference_simulate_trace(config, trace, step_cycles=256)
            optimized = simulate_trace(config, trace, step_cycles=256)
            _assert_identical_results(seed, optimized, config.name)

    @pytest.mark.parametrize("preset", ["Skylake", "Cedarview"])
    def test_every_bug_type(self, preset, gcc_trace):
        trace = gcc_trace[:1500]
        config = core_microarch(preset)
        suite = core_bug_suite(max_variants_per_type=2)
        assert len(suite) == 14
        for variants in suite.values():
            for bug in variants:
                seed = reference_simulate_trace(
                    config, trace, bug=bug, step_cycles=256
                )
                optimized = simulate_trace(config, trace, bug=bug, step_cycles=256)
                _assert_identical_results(seed, optimized, f"{preset}/{bug.name}")

    def test_second_workload_and_step_size(self, sjeng_trace):
        for preset in ("Broadwell", "Silvermont", "Jaguar"):
            config = core_microarch(preset)
            seed = reference_simulate_trace(config, sjeng_trace, step_cycles=512)
            optimized = simulate_trace(config, sjeng_trace, step_cycles=512)
            _assert_identical_results(seed, optimized, preset)

    def test_no_warmup_path(self, skylake, gcc_trace):
        trace = gcc_trace[:1200]
        seed = reference_simulate_trace(
            skylake, trace, step_cycles=256, warmup=False
        )
        optimized = simulate_trace(skylake, trace, step_cycles=256, warmup=False)
        _assert_identical_results(seed, optimized, "no-warmup")

    def test_warmup_state_matches_seed(self, skylake, gcc_trace):
        trace = gcc_trace[:1500]
        seed_pipeline = ReferenceO3Pipeline(skylake, step_cycles=256)
        seed_pipeline.warmup(list(trace))
        optimized_pipeline = O3Pipeline(skylake, step_cycles=256)
        optimized_pipeline.warmup(decode_trace(trace))
        _assert_identical_series(
            seed_pipeline.run(list(trace)),
            optimized_pipeline.run(decode_trace(trace)),
            "warmup",
        )

    def test_cumulative_counters_after_run(self, skylake, gcc_trace):
        trace = gcc_trace[:1500]
        seed_pipeline = ReferenceO3Pipeline(skylake, step_cycles=256)
        seed_pipeline.run(list(trace))
        optimized_pipeline = O3Pipeline(skylake, step_cycles=256)
        optimized_pipeline.run(trace)
        seed_counters = seed_pipeline._cumulative_counters()
        optimized_counters = optimized_pipeline._cumulative_counters()
        assert seed_counters == optimized_counters

    def test_stateful_hook_still_called_per_dispatch(self, skylake, gcc_trace):
        """The hook-hoisting fast path must not skip overridden hooks."""

        class CountingDelay(CoreBugModel):
            name = "counting"

            def __init__(self):
                self.calls = 0

            def extra_issue_delay(self, uop, context):
                self.calls += 1
                return 0

        bug = CountingDelay()
        simulate_trace(skylake, gcc_trace[:800], bug=bug, step_cycles=256)
        assert bug.calls == 800

    def test_memory_study_decoded_equivalence(self, gcc_trace):
        from repro.bugs.memory_bugs import memory_bug_suite

        config = memory_microarch("Skylake-mem")
        bug_sample = [None] + [
            variants[0] for variants in memory_bug_suite(1).values()
        ][:3]
        for bug in bug_sample:
            legacy = simulate_memory_trace(
                config, list(gcc_trace[:2000]), bug=bug, step_instructions=500
            )
            decoded = simulate_memory_trace(
                config,
                pickle.loads(pickle.dumps(decode_trace(gcc_trace[:2000]))),
                bug=bug,
                step_instructions=500,
            )
            context = f"memsim/{getattr(bug, 'name', 'bug-free')}"
            assert legacy.cycles == decoded.cycles, context
            assert legacy.amat == decoded.amat, context
            _assert_identical_series(legacy.series, decoded.series, context)


class TestPersistentPoolDeterminism:
    """Pool reuse across batches must not change any result."""

    @pytest.fixture()
    def registry_and_traces(self, gcc_program):
        registry = TraceRegistry()
        first = TraceGenerator(gcc_program, seed=21).generate(1200)
        second = TraceGenerator(gcc_program, seed=22).generate(1200)
        ids = [
            registry.register(decode_trace(first)),
            registry.register(decode_trace(second)),
        ]
        return registry, ids

    def _batch(self, trace_id, configs=("Skylake", "K8")):
        from repro.bugs.core_bugs import SerializeOpcode

        return [
            SimulationJob(study="core", config=core_microarch(name), bug=bug,
                          trace_id=trace_id, step=256)
            for name in configs
            for bug in (None, SerializeOpcode(Opcode.XOR))
        ]

    def test_pool_reuse_matches_serial_across_batches(self, registry_and_traces):
        registry, (first_id, second_id) = registry_and_traces
        batches = [
            self._batch(first_id),
            self._batch(second_id),  # introduces a new trace via chunk deltas
            self._batch(first_id) + self._batch(second_id),
        ]
        serial = JobEngine(jobs=1)
        with JobEngine(jobs=2, chunk_size=1) as persistent:
            for batch in batches:
                expected = serial.run(batch, registry.traces)
                actual = persistent.run(batch, registry.traces)
                for a, b in zip(expected, actual):
                    assert a.cycles == b.cycles
                    assert np.array_equal(a.ipc, b.ipc)
                    for name in a.counters:
                        assert np.array_equal(a.counters[name], b.counters[name])
            stats = persistent.stats
            # Every batch either reused the pool or (re)created it via the
            # delta-rebase policy; at least one batch ran on a reused pool.
            assert stats.pool_creates + stats.pool_reuses == len(batches)
            assert stats.pool_reuses >= 1
            assert stats.trace_deltas > 0  # second trace travelled as a delta

    def test_rerun_on_same_pool_is_identical(self, registry_and_traces):
        registry, (first_id, _) = registry_and_traces
        batch = self._batch(first_id)
        with JobEngine(jobs=2, chunk_size=2) as engine:
            first = engine.run(batch, registry.traces)
            second = engine.run(batch, registry.traces)
        for a, b in zip(first, second):
            assert a.cycles == b.cycles
            for name in a.counters:
                assert np.array_equal(a.counters[name], b.counters[name])

    def test_heavy_delta_traffic_triggers_pool_rebase(self, registry_and_traces):
        registry, (first_id, second_id) = registry_and_traces
        serial = JobEngine(jobs=1)
        with JobEngine(jobs=2, chunk_size=1) as engine:
            engine.run(self._batch(first_id), registry.traces)
            # The second trace keeps arriving as a per-chunk delta; once the
            # shipped delta payload outweighs the initializer payload the
            # next batch must rebase (recreate) the pool...
            for _ in range(3):
                batch = self._batch(second_id)
                expected = serial.run(batch, registry.traces)
                actual = engine.run(batch, registry.traces)
                for a, b in zip(expected, actual):
                    assert a.cycles == b.cycles
            assert engine.stats.pool_creates >= 2
            # ...after which the recurring trace is initializer-shipped and
            # stops travelling with chunks.
            deltas_after_rebase = engine.stats.trace_deltas
            engine.run(self._batch(second_id), registry.traces)
            assert engine.stats.trace_deltas == deltas_after_rebase

    def test_close_is_idempotent_and_pool_recreated(self, registry_and_traces):
        registry, (first_id, _) = registry_and_traces
        batch = self._batch(first_id, configs=("Skylake",))
        engine = JobEngine(jobs=2, chunk_size=1)
        engine.run(batch, registry.traces)
        engine.close()
        engine.close()
        engine.run(batch, registry.traces)
        assert engine.stats.pool_creates == 2
        engine.close()


class TestSchedulers:
    def test_ljf_plan_is_cost_balanced_and_deterministic(self):
        from repro.runtime.engine import JobEngine as Engine

        program = build_program(workload("403.gcc"), seed=11)
        registry = TraceRegistry()
        short = registry.register(
            decode_trace(TraceGenerator(program, seed=31).generate(400))
        )
        long = registry.register(
            decode_trace(TraceGenerator(program, seed=32).generate(4000))
        )
        jobs = []
        for trace_id in (short, long):
            for name in ("Skylake", "K8", "Cedarview"):
                jobs.append(
                    SimulationJob(study="core", config=core_microarch(name),
                                  bug=None, trace_id=trace_id, step=256)
                )
        pending = list(enumerate(jobs))
        engine = Engine(jobs=2, chunk_size=3)
        plan_a = engine._plan_chunks(pending, registry.traces)
        plan_b = engine._plan_chunks(pending, registry.traces)
        assert plan_a == plan_b
        assert sorted(i for chunk in plan_a for i, _ in chunk) == list(
            range(len(jobs))
        )
        assert all(len(chunk) <= 3 for chunk in plan_a)
        from repro.runtime.engine import _job_cost

        def chunk_cost(chunk):
            return sum(_job_cost(job, registry.traces) for _, job in chunk)

        # Chunks are dispatched costliest-first, and LPT places the
        # costliest job at the head of whichever chunk holds it.
        costs = [chunk_cost(chunk) for chunk in plan_a]
        assert costs == sorted(costs, reverse=True)
        costliest = max(pending, key=lambda item: _job_cost(item[1], registry.traces))
        assert any(chunk[0] == costliest for chunk in plan_a)

    def test_uniform_scheduler_matches_seed_chunking(self):
        from repro.runtime.engine import _chunked

        engine = JobEngine(jobs=2, chunk_size=2, scheduler="uniform")
        pending = list(enumerate(range(7)))
        assert engine._plan_chunks(pending, {}) == _chunked(pending, 2)

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            JobEngine(jobs=1, scheduler="random")

    def test_schedulers_produce_identical_results(self, gcc_program):
        registry = TraceRegistry()
        trace_id = registry.register(
            decode_trace(TraceGenerator(gcc_program, seed=41).generate(1000))
        )
        jobs = [
            SimulationJob(study="core", config=core_microarch(name), bug=None,
                          trace_id=trace_id, step=256)
            for name in ("Skylake", "K8", "Cedarview", "Broadwell")
        ]
        with JobEngine(jobs=2, chunk_size=1, scheduler="ljf") as ljf, \
                JobEngine(jobs=2, chunk_size=1, scheduler="uniform") as uniform:
            for a, b in zip(
                ljf.run(jobs, registry.traces), uniform.run(jobs, registry.traces)
            ):
                assert a.cycles == b.cycles
                for name in a.counters:
                    assert np.array_equal(a.counters[name], b.counters[name])


class TestProgressStats:
    def test_three_argument_progress_receives_stats(self, gcc_program):
        registry = TraceRegistry()
        trace_id = registry.register(
            decode_trace(TraceGenerator(gcc_program, seed=51).generate(600))
        )
        jobs = [
            SimulationJob(study="core", config=core_microarch(name), bug=None,
                          trace_id=trace_id, step=256)
            for name in ("Skylake", "K8")
        ]
        seen = []
        engine = JobEngine(
            jobs=1, progress=lambda done, total, stats: seen.append(
                (done, total, stats.batches)
            )
        )
        engine.run(jobs, registry.traces)
        assert seen[-1][:2] == (len(jobs), len(jobs))
        assert all(batches == 1 for _, _, batches in seen)

    def test_two_argument_progress_still_works(self, gcc_program):
        registry = TraceRegistry()
        trace_id = registry.register(
            decode_trace(TraceGenerator(gcc_program, seed=52).generate(600))
        )
        jobs = [
            SimulationJob(study="core", config=core_microarch("Skylake"), bug=None,
                          trace_id=trace_id, step=256)
        ]
        seen = []
        JobEngine(jobs=1, progress=lambda done, total: seen.append((done, total))).run(
            jobs, registry.traces
        )
        assert seen[-1] == (1, 1)


class TestBenchHarness:
    def test_quick_report_shape_and_equivalence_gate(self, tmp_path):
        from repro.bench.perf import run_benchmarks

        report = run_benchmarks(quick=True, jobs=2)
        assert report["schema_version"] == 7
        assert report["single"]["counter_equivalence_checked"]
        assert report["single"]["kernel"] == "scalar"
        assert report["single"]["aggregate_speedup"] > 1.0
        # native section (v5): equivalence-gated compiled-kernel ratio with
        # compiler provenance, or an explicit available=false marker
        native = report["native"]
        assert native["kernel"] == "native"
        if native["available"]:
            assert native["counter_equivalence_checked"]
            assert native["aggregate_speedup"] > 0.0
            assert native["compiler"]["path"]
            assert native["compiler"]["version"]
        else:
            assert native["reason"]
        assert report["batch"]["kernel"] == "vector"
        assert report["batch"]["counter_equivalence_checked"]
        assert report["batch"]["aggregate_speedup"] > 0.0
        assert set(report["batch"]["presets"]) == {"Skylake", "Cedarview"}
        assert set(report["engine"]["schedulers"]) == {"ljf", "uniform"}
        assert report["engine"]["backend"] == "local:2"
        assert all(
            row["backend"] == "local:2"
            for row in report["engine"]["schedulers"].values()
        )
        assert report["store"]["warm_store_hits"] == report["store"]["jobs"]
        assert report["store"]["cold_executed"] == report["store"]["jobs"]
        # cluster section (v6): every policy A/B'd with asserted dispatch
        # invariants and liveness metrics recorded for the ratchet
        cluster = report["cluster"]
        assert set(cluster["policies"]) == {"fifo", "ljf", "edd", "suspend"}
        assert all(cluster["policy_checks"].values())
        for row in cluster["policies"].values():
            assert row["makespan_seconds"] > 0
            assert row["chunks_requeued"] == 0  # healthy run: nothing lost
            assert row["workers_spawned"] >= 1
        assert cluster["policies"]["fifo"]["speedup_vs_fifo"] == 1.0
        # serve section (v4): warm passes served entirely from the overlay,
        # latency columns present for the ratchet to track
        serve = report["serve"]
        assert serve["warm"]["executed"] == 0
        assert serve["cold"]["executed"] > 0
        assert serve["warm"]["p50_ms"] > 0
        assert serve["warm"]["p99_ms"] >= serve["warm"]["p50_ms"]
        assert serve["warm"]["verdicts_per_sec"] > 0
        # mixes section (v7): digest-stable builds, populated throughput and
        # per-mix MPKI columns, quick subset ordered mix1 < mix7
        mixes = report["mixes"]
        assert mixes["digest_stability_checked"]
        assert mixes["build_instr_per_sec"] > 0
        assert mixes["sweep_instr_per_sec"] > 0
        assert set(mixes["per_mix"]) == {"mix1", "mix4", "mix7"}
        assert (mixes["per_mix"]["mix1"]["llc_mpki"]
                < mixes["per_mix"]["mix7"]["llc_mpki"])

    def test_batch_speedup_column_readable_by_ratchet(self, tmp_path):
        import json

        from repro.bench.ratchet import read_batch_speedup, read_speedup

        report = {
            "single": {"aggregate_speedup": 3.1},
            "batch": {"aggregate_speedup": 1.4},
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(report))
        assert read_speedup(path) == 3.1
        assert read_batch_speedup(path) == 1.4
        legacy = tmp_path / "legacy.json"
        legacy.write_text(json.dumps({"single": {"aggregate_speedup": 3.0}}))
        assert read_batch_speedup(legacy) is None

    def test_native_speedup_column_readable_and_gated_by_ratchet(self, tmp_path):
        import json

        from repro.bench.ratchet import NATIVE_FLOOR, evaluate, read_native_speedup

        report = {
            "single": {"aggregate_speedup": 3.1},
            "native": {"available": True, "aggregate_speedup": 9.5},
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(report))
        assert read_native_speedup(path) == 9.5
        # compiler-less host: available=false means the gate does not apply
        nocc = tmp_path / "nocc.json"
        nocc.write_text(json.dumps({
            "single": {"aggregate_speedup": 3.0},
            "native": {"available": False, "reason": "no compiler"},
        }))
        assert read_native_speedup(nocc) is None
        legacy = tmp_path / "legacy.json"
        legacy.write_text(json.dumps({"single": {"aggregate_speedup": 3.0}}))
        assert read_native_speedup(legacy) is None
        # the gate itself: floor 2.0, ratcheted like the single headline
        assert evaluate([9.5], None, floor=NATIVE_FLOOR).ok
        assert not evaluate([1.5], None, floor=NATIVE_FLOOR).ok

    def test_serve_latency_column_readable_by_ratchet(self, tmp_path):
        import json

        from repro.bench.ratchet import read_serve_latency

        report = {
            "single": {"aggregate_speedup": 3.1},
            "serve": {"warm": {"p50_ms": 6.0, "verdicts_per_sec": 150.5}},
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(report))
        assert read_serve_latency(path) == (6.0, 150.5)
        legacy = tmp_path / "legacy.json"
        legacy.write_text(json.dumps({"single": {"aggregate_speedup": 3.0}}))
        assert read_serve_latency(legacy) is None
