"""Tests for the out-of-order core simulator."""

import numpy as np
import pytest

from repro.coresim import (
    BranchPredictor,
    Cache,
    CacheHierarchy,
    CoreBugModel,
    O3Pipeline,
    simulate_trace,
)
from repro.coresim.counters import TimeSeriesSampler, derived_counters
from repro.uarch import CacheConfig, core_microarch, kb
from repro.workloads import MicroOp, Opcode, TraceGenerator, build_program, workload


class TestCache:
    def test_hits_after_fill(self):
        cache = Cache("l1d", CacheConfig(size=kb(4), associativity=4, latency=2))
        assert cache.lookup(0x1000) is False
        assert cache.lookup(0x1000) is True
        assert cache.misses == 1 and cache.accesses == 2

    def test_lru_eviction(self):
        cache = Cache("tiny", CacheConfig(size=256, associativity=2, latency=1,
                                          line_size=64))
        # Two lines map to the same set (2 sets, 2 ways); a third evicts the LRU.
        base = 0x0
        stride = 64 * 2  # same set
        cache.lookup(base)
        cache.lookup(base + stride)
        cache.lookup(base)  # refresh line 0
        cache.lookup(base + 2 * stride)  # evicts base+stride
        assert cache.lookup(base) is True
        assert cache.lookup(base + stride) is False

    def test_hierarchy_latency_and_bug_hook(self, skylake):
        class L2Bug(CoreBugModel):
            def cache_extra_latency(self, level):
                return 7 if level == 2 else 0

        clean = CacheHierarchy(skylake, CoreBugModel())
        buggy = CacheHierarchy(skylake, L2Bug())
        address = 0x5000_0000
        assert buggy.access(address) == clean.access(address) + 7


class TestBranchPredictor:
    def _branch(self, pc, taken, target=0x100):
        return MicroOp(opcode=Opcode.BRANCH, srcs=(0,), dest=None, pc=pc,
                       taken=taken, target=target)

    def test_learns_biased_branch(self, skylake):
        predictor = BranchPredictor(skylake, CoreBugModel())
        mispredicts = sum(
            predictor.predict_and_update(self._branch(0x400, True)) for _ in range(50)
        )
        assert mispredicts <= 3

    def test_reduced_table_changes_behaviour(self, skylake):
        class TinyTable(CoreBugModel):
            def bp_table_entries(self, configured):
                return 4

        branches = [self._branch(0x400 + 16 * (i % 37), bool((i * 7 + i % 13) % 3))
                    for i in range(400)]
        healthy = BranchPredictor(skylake, CoreBugModel())
        tiny = BranchPredictor(skylake, TinyTable())
        healthy_miss = sum(healthy.predict_and_update(b) for b in branches)
        tiny_miss = sum(tiny.predict_and_update(b) for b in branches)
        assert tiny.table_entries == 4
        assert healthy.table_entries == skylake.bp_table_entries
        # Aliasing into 4 counters must change the prediction stream.
        assert tiny_miss != healthy_miss
        assert tiny_miss > 0

    def test_stats_and_reset(self, skylake):
        predictor = BranchPredictor(skylake, CoreBugModel())
        predictor.predict_and_update(self._branch(0x400, True))
        assert predictor.stats()["bp.lookups"] == 1
        predictor.reset_stats()
        assert predictor.stats()["bp.lookups"] == 0


class TestSampler:
    def test_derived_counters(self):
        deltas = {"commit.instructions": 100.0, "commit.branches": 20.0,
                  "bp.lookups": 20.0, "bp.mispredicts": 5.0, "cycles": 200.0}
        derived = derived_counters(deltas)
        assert derived["derived.pct_branches"] == pytest.approx(0.2)
        assert derived["derived.bp_mispredict_rate"] == pytest.approx(0.25)
        assert derived["derived.commit_utilization"] == pytest.approx(0.5)

    def test_sampler_builds_series(self):
        sampler = TimeSeriesSampler(step_cycles=100)
        sampler.sample({"commit.instructions": 80.0})
        sampler.sample({"commit.instructions": 200.0})
        sampler.finalize({"commit.instructions": 260.0}, leftover_cycles=60)
        series = sampler.build()
        assert series.num_steps == 3
        assert series.ipc[0] == pytest.approx(0.8)
        assert series.ipc[1] == pytest.approx(1.2)
        assert series.ipc[2] == pytest.approx(1.0)

    def test_empty_sampler_raises(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(step_cycles=10).build()


class TestPipeline:
    def test_simulation_commits_every_instruction(self, skylake, gcc_trace):
        result = simulate_trace(skylake, gcc_trace[:2000], step_cycles=256)
        assert result.instructions == 2000
        assert result.cycles > 0
        assert 0.05 < result.ipc <= skylake.width
        assert result.series.num_steps >= 1

    def test_ipc_bounded_by_width(self, gcc_trace):
        for name in ("Skylake", "K8", "Cedarview"):
            config = core_microarch(name)
            result = simulate_trace(config, gcc_trace[:1500], step_cycles=256)
            assert result.ipc <= config.width + 1e-9

    def test_determinism(self, skylake, gcc_trace):
        r1 = simulate_trace(skylake, gcc_trace[:1500], step_cycles=256)
        r2 = simulate_trace(skylake, gcc_trace[:1500], step_cycles=256)
        assert r1.cycles == r2.cycles
        assert np.allclose(r1.series.ipc, r2.series.ipc)

    def test_empty_trace_rejected(self, skylake):
        with pytest.raises(ValueError):
            simulate_trace(skylake, [])

    def test_counters_consistent(self, skylake, gcc_trace):
        pipeline = O3Pipeline(skylake, step_cycles=512)
        pipeline.warmup(gcc_trace[:2000])
        pipeline.run(gcc_trace[:2000])
        counters = pipeline._cumulative_counters()
        assert counters["commit.instructions"] == 2000
        assert counters["fetch.instructions"] == 2000
        assert counters["issue.instructions"] == pytest.approx(2000)
        assert counters["commit.branches"] == sum(1 for u in gcc_trace[:2000] if u.is_branch)
        assert counters["commit.loads"] == sum(
            1 for u in gcc_trace[:2000] if u.opcode is Opcode.LOAD)

    def test_narrower_machine_is_slower(self, gcc_trace):
        wide = simulate_trace(core_microarch("Broadwell"), gcc_trace[:2000])
        narrow = simulate_trace(core_microarch("Cedarview"), gcc_trace[:2000])
        assert narrow.cycles > wide.cycles

    def test_runtime_seconds(self, skylake, gcc_trace):
        result = simulate_trace(skylake, gcc_trace[:1000])
        assert result.runtime_seconds(skylake.clock_ghz) == pytest.approx(
            result.cycles / (skylake.clock_ghz * 1e9))


class TestHookOverrideDetection:
    """Regression tests for the class-level hook-override contract.

    The pipeline (and the vector kernel's eligibility check) detect
    overridden hooks once, at construction, by comparing class attributes
    against :class:`CoreBugModel`.  A hook attached to the subclass *after*
    class creation — a pattern bug prototypes use — must still be detected:
    silently taking the BUG_FREE fast path would drop the injected bug.
    """

    def test_hook_assigned_after_class_creation_is_called(self, skylake, gcc_trace):
        class LateBug(CoreBugModel):
            name = "late"

        calls = []

        def serialize(self, uop):
            calls.append(uop.opcode)
            return False

        LateBug.serialize = serialize  # attached post class creation
        pipeline = O3Pipeline(skylake, bug=LateBug(), step_cycles=256)
        assert pipeline._hook_serialize, "late class-level override not detected"
        pipeline.run(gcc_trace[:400])
        assert calls, "late-attached hook was never invoked"

    def test_late_override_changes_timing(self, skylake, gcc_trace):
        from repro.workloads import decode_trace

        class LateSerialize(CoreBugModel):
            name = "late-serialize"

        LateSerialize.serialize = lambda self, uop: uop.opcode is Opcode.ADD
        trace = decode_trace(gcc_trace[:800])
        bugged = simulate_trace(skylake, trace, bug=LateSerialize(), step_cycles=256)
        clean = simulate_trace(skylake, trace, step_cycles=256)
        assert bugged.cycles > clean.cycles, (
            "post-creation serialize override silently took the fast path"
        )

    def test_late_override_excluded_from_vector_kernel(self):
        from repro.coresim import supports_vector

        class LateDelay(CoreBugModel):
            name = "late-delay"

        assert supports_vector(LateDelay())  # nothing overridden yet
        LateDelay.extra_issue_delay = lambda self, uop, context: 1
        assert not supports_vector(LateDelay()), (
            "vector eligibility must see post-creation hook overrides"
        )

    def test_structural_hooks_keep_vector_eligibility(self):
        from repro.coresim import supports_vector

        class Structural(CoreBugModel):
            name = "structural"

            def register_reduction(self):
                return 8

            def bp_table_entries(self, configured):
                return configured // 2

        assert supports_vector(Structural())
