"""Tests for the bug-injection framework (core and memory bugs)."""

import pytest

from repro.bugs import (
    CORE_BUG_TYPES,
    MEMORY_BUG_TYPES,
    BPTableReduction,
    IQPressureDelay,
    IfOldestIssueOnly,
    IssueOnlyIfOldest,
    L2LatencyBug,
    LongBranchDelay,
    MispredictPenalty,
    OpcodeUsesRegisterDelay,
    RegisterReduction,
    SerializeOpcode,
    Severity,
    StoresToLineDelay,
    StoresToRegisterDelay,
    all_core_bugs,
    all_memory_bugs,
    core_bug_suite,
    figure1_bug1,
    figure1_bug2,
    ipc_impact,
    measure_severity,
    memory_bug_suite,
    severity_distribution,
)
from repro.coresim import simulate_trace
from repro.coresim.hooks import DispatchContext
from repro.workloads import MicroOp, Opcode


def _uop(opcode, srcs=(1, 2), dest=3, address=None, pc=0x400, target=None):
    return MicroOp(opcode=opcode, srcs=srcs, dest=dest, pc=pc, address=address,
                   target=target, taken=True if opcode is Opcode.BRANCH else None)


_CTX = DispatchContext(iq_free=32, rob_free=128, producer_opcodes=())


class TestRegistry:
    def test_all_fourteen_types_present(self):
        suite = core_bug_suite()
        assert set(suite) == set(CORE_BUG_TYPES)
        assert len(CORE_BUG_TYPES) == 14
        assert all(len(v) >= 2 for v in suite.values())

    def test_variant_limit(self):
        limited = core_bug_suite(max_variants_per_type=1)
        assert all(len(v) == 1 for v in limited.values())
        with pytest.raises(ValueError):
            core_bug_suite(max_variants_per_type=0)

    def test_bug_names_unique(self):
        names = [bug.name for bug in all_core_bugs()]
        assert len(names) == len(set(names))

    def test_memory_suite(self):
        assert set(memory_bug_suite()) == set(MEMORY_BUG_TYPES)
        assert len(MEMORY_BUG_TYPES) == 6
        assert len(all_memory_bugs(1)) == 6


class TestCoreBugHooks:
    def test_serialize(self):
        bug = SerializeOpcode(Opcode.XOR)
        assert bug.serialize(_uop(Opcode.XOR))
        assert not bug.serialize(_uop(Opcode.ADD))

    def test_issue_only_if_oldest(self):
        bug = IssueOnlyIfOldest(Opcode.MUL)
        assert bug.issue_only_if_oldest(_uop(Opcode.MUL))
        assert not bug.issue_only_if_oldest(_uop(Opcode.XOR))

    def test_if_oldest_issue_only(self):
        bug = IfOldestIssueOnly(Opcode.XOR)
        assert bug.oldest_blocks_others(_uop(Opcode.XOR))
        assert not bug.oldest_blocks_others(_uop(Opcode.SUB))

    def test_iq_pressure_delay(self):
        bug = IQPressureDelay(threshold=8, delay=5)
        crowded = DispatchContext(iq_free=3, rob_free=100, producer_opcodes=())
        assert bug.extra_issue_delay(_uop(Opcode.ADD), crowded) == 5
        assert bug.extra_issue_delay(_uop(Opcode.ADD), _CTX) == 0

    def test_mispredict_penalty(self):
        bug = MispredictPenalty(12)
        assert bug.branch_extra_penalty(_uop(Opcode.BRANCH), True) == 12
        assert bug.branch_extra_penalty(_uop(Opcode.BRANCH), False) == 0

    def test_stores_to_line(self):
        bug = StoresToLineDelay(threshold=2, delay=9)
        bug.on_simulation_start(None)
        store = _uop(Opcode.STORE, dest=None, address=0x1000)
        assert bug.extra_issue_delay(store, _CTX) == 0
        assert bug.extra_issue_delay(store, _CTX) == 0
        assert bug.extra_issue_delay(store, _CTX) == 9  # third store to same line

    def test_stores_to_register_modes(self):
        after = StoresToRegisterDelay(threshold=2, delay=4, mode="after")
        after.on_simulation_start(None)
        writes = [_uop(Opcode.ADD, dest=5) for _ in range(4)]
        delays = [after.extra_issue_delay(u, _CTX) for u in writes]
        assert delays == [0, 0, 4, 4]
        every = StoresToRegisterDelay(threshold=2, delay=4, mode="every")
        every.on_simulation_start(None)
        delays = [every.extra_issue_delay(u, _CTX) for u in writes]
        assert delays == [0, 4, 0, 4]
        with pytest.raises(ValueError):
            StoresToRegisterDelay(2, 4, mode="sometimes")

    def test_l2_latency_and_register_reduction(self):
        assert L2LatencyBug(6).cache_extra_latency(2) == 6
        assert L2LatencyBug(6).cache_extra_latency(1) == 0
        assert RegisterReduction(32).register_reduction() == 32

    def test_long_branch_delay(self):
        bug = LongBranchDelay(distance_bytes=64, delay=3)
        near = _uop(Opcode.BRANCH, dest=None, pc=0x400, target=0x420)
        far = _uop(Opcode.BRANCH, dest=None, pc=0x400, target=0x4000)
        assert bug.extra_issue_delay(near, _CTX) == 0
        assert bug.extra_issue_delay(far, _CTX) == 3

    def test_opcode_uses_register(self):
        bug = OpcodeUsesRegisterDelay(Opcode.ADD, register=0, delay=10)
        assert bug.extra_issue_delay(_uop(Opcode.ADD, srcs=(0, 2)), _CTX) == 10
        assert bug.extra_issue_delay(_uop(Opcode.ADD, srcs=(1, 2), dest=0), _CTX) == 10
        assert bug.extra_issue_delay(_uop(Opcode.ADD, srcs=(1, 2), dest=3), _CTX) == 0
        assert bug.extra_issue_delay(_uop(Opcode.SUB, srcs=(0, 0)), _CTX) == 0

    def test_bp_table_reduction(self):
        assert BPTableReduction(4000).bp_table_entries(4096) == 96
        assert BPTableReduction(100000).bp_table_entries(4096) == 4  # clamped


class TestBugImpact:
    def test_serialize_degrades_ipc(self, skylake, gcc_trace):
        trace = gcc_trace[:2500]
        impact = ipc_impact(skylake, trace, figure1_bug2(), step_cycles=512)
        assert impact > 0.03

    def test_named_bugs(self):
        assert figure1_bug1().bug_type == "IfOldestIssueOnlyX"
        assert figure1_bug2().bug_type == "Serialized"

    def test_severity_bands(self):
        assert Severity.from_impact(0.2) is Severity.HIGH
        assert Severity.from_impact(0.07) is Severity.MEDIUM
        assert Severity.from_impact(0.02) is Severity.LOW
        assert Severity.from_impact(0.001) is Severity.VERY_LOW

    def test_measure_severity_and_distribution(self, skylake, gcc_trace):
        report = measure_severity(figure1_bug2(), skylake,
                                  {"gcc": gcc_trace[:1500]}, step_cycles=512)
        assert 0.0 <= report.average_impact <= 1.0
        assert report.severity in tuple(Severity)
        distribution = severity_distribution([report])
        assert sum(distribution.values()) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            severity_distribution([])
        with pytest.raises(ValueError):
            measure_severity(figure1_bug2(), skylake, {})
