"""Tests for the from-scratch ML engines and metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    Adam,
    CNNRegressor,
    GradientBoostedTrees,
    LassoRegressor,
    LSTMRegressor,
    MLPRegressor,
    RegressionTree,
    StandardScaler,
    TABLE_IV_ENGINES,
    build_model,
    clip_gradients,
    inference_error,
    make_window_dataset,
    mean_squared_error,
    pearson_correlation,
    r_squared,
)


def _linear_data(n=300, f=8, noise=0.02, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, f))
    w = rng.normal(size=f)
    y = X @ w * 0.2 + 1.0 + rng.normal(scale=noise, size=n)
    return X, y


class TestMetrics:
    def test_mse_and_mae(self):
        assert mean_squared_error([1, 2, 3], [1, 2, 3]) == 0.0
        assert mean_squared_error([0, 0], [1, 1]) == 1.0

    def test_inference_error_matches_equation_one(self):
        y = np.array([1.0, 2.0, 3.0])
        yhat = np.array([1.5, 2.0, 2.0])
        # 0.5*((|e1|+|e2|) + (|e2|+|e3|)) = 0.5*((0.5+0)+(0+1.0)) = 0.75
        assert inference_error(y, yhat) == pytest.approx(0.75)
        assert inference_error([2.0], [1.0]) == pytest.approx(1.0)

    def test_pearson(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)
        assert pearson_correlation(x, np.ones(10)) == 0.0

    def test_r_squared(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert r_squared(y, y) == pytest.approx(1.0)
        assert r_squared(y, np.full(4, y.mean())) == pytest.approx(0.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mean_squared_error([1, 2], [1, 2, 3])


class TestPreprocessing:
    def test_scaler_round_trip(self):
        X = np.random.default_rng(0).normal(5.0, 3.0, size=(50, 4))
        scaler = StandardScaler()
        Z = scaler.fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_scaler_constant_column(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))

    def test_window_dataset(self):
        features = np.arange(12.0).reshape(6, 2)
        targets = np.arange(6.0)
        X, y = make_window_dataset(features, targets, window=3)
        assert X.shape == (4, 3, 2)
        assert np.array_equal(y, targets[2:])
        assert np.array_equal(X[0], features[0:3])

    def test_window_larger_than_series(self):
        X, y = make_window_dataset(np.zeros((2, 3)), np.zeros(2), window=5)
        assert len(y) == 0

    @settings(max_examples=20, deadline=None)
    @given(window=st.integers(1, 5), steps=st.integers(5, 20))
    def test_window_dataset_sizes(self, window, steps):
        features = np.random.default_rng(0).random((steps, 3))
        targets = np.random.default_rng(1).random(steps)
        X, y = make_window_dataset(features, targets, window)
        assert len(X) == len(y) == max(0, steps - window + 1)


class TestOptim:
    def test_clip_gradients(self):
        grads = [np.full(4, 10.0)]
        clipped = clip_gradients(grads, max_norm=1.0)
        assert np.linalg.norm(clipped[0]) == pytest.approx(1.0)
        assert clip_gradients(grads, max_norm=0.0)[0] is grads[0]

    def test_adam_reduces_quadratic(self):
        params = [np.array([5.0])]
        optimizer = Adam(params, learning_rate=0.1)
        for _ in range(200):
            optimizer.step([2 * params[0]])
        assert abs(params[0][0]) < 0.5


class TestEngines:
    def test_lasso_recovers_sparse_weights(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(200, 10))
        y = 3.0 * X[:, 0] - 2.0 * X[:, 4] + 0.5
        model = LassoRegressor(alpha=0.01)
        model.fit(X, y)
        prediction = model.predict(X)
        assert r_squared(y, prediction) > 0.95
        assert {0, 4}.issubset(set(model.selected_features))

    def test_regression_tree_splits(self):
        X = np.linspace(0, 1, 100)[:, None]
        y = (X[:, 0] > 0.5).astype(float)
        tree = RegressionTree(max_depth=2).fit(X, y)
        assert mean_squared_error(y, tree.predict(X)) < 0.01

    def test_gbt_fits_nonlinear_function(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(-1, 1, size=(300, 3))
        y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2
        model = GradientBoostedTrees(n_estimators=80, max_depth=3)
        model.fit(X, y)
        assert r_squared(y, model.predict(X)) > 0.9

    def test_gbt_early_stopping(self):
        X, y = _linear_data(n=200)
        model = GradientBoostedTrees(n_estimators=300, early_stopping_rounds=10)
        model.fit(X[:150], y[:150], X[150:], y[150:])
        assert model.n_trees_fitted <= 300

    @pytest.mark.parametrize("factory", [
        lambda: MLPRegressor(hidden_layers=1, hidden_size=32, max_epochs=80, patience=30),
        lambda: CNNRegressor(conv_layers=1, filters=16, max_epochs=60, patience=30),
        lambda: LSTMRegressor(layers=1, hidden_size=24, max_epochs=60, patience=30),
    ])
    def test_neural_engines_learn_linear_map(self, factory):
        X, y = _linear_data(n=250, f=6)
        model = factory()
        model.fit(X, y)
        assert r_squared(y, model.predict(X)) > 0.3

    def test_predict_before_fit_raises(self):
        for model in (LassoRegressor(), GradientBoostedTrees(n_estimators=5),
                      MLPRegressor(), CNNRegressor(), LSTMRegressor()):
            with pytest.raises(RuntimeError):
                model.predict(np.zeros((2, 3)))

    def test_empty_training_data_rejected(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(n_estimators=5).fit(np.zeros((0, 3)), np.zeros(0))


class TestEngineFactory:
    def test_table_iv_names_parse(self):
        for name in TABLE_IV_ENGINES:
            model = build_model(name, max_epochs=5, patience=2)
            assert model.name.replace("_", "-").lower().startswith(
                name.replace("_", "-").lower()[:3]) or model.name == name

    def test_specific_names(self):
        assert isinstance(build_model("GBT-150"), GradientBoostedTrees)
        assert isinstance(build_model("1-MLP-500"), MLPRegressor)
        assert isinstance(build_model("4-CNN-150"), CNNRegressor)
        assert isinstance(build_model("1-LSTM-250"), LSTMRegressor)
        assert isinstance(build_model("lasso"), LassoRegressor)

    def test_invalid_names(self):
        for name in ("GBT", "5-SVM-100", "GBT-0", "banana"):
            with pytest.raises(ValueError):
                build_model(name)
