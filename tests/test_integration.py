"""End-to-end integration tests of the two-stage methodology (tiny scale)."""

import pytest

from repro.bugs import SerializeOpcode, core_bug_suite
from repro.detect import (
    DetectionSetup,
    ProbeModelConfig,
    SimulationCache,
    TwoStageDetector,
    build_probes,
)
from repro.uarch import core_microarch
from repro.workloads import Opcode


@pytest.fixture(scope="module")
def tiny_detector():
    """A fully prepared detector on a deliberately tiny configuration."""
    probes = build_probes(["403.gcc"], instructions_per_benchmark=9000,
                          interval_size=3000, max_simpoints_per_benchmark=3, seed=4)
    names_i = ["Broadwell", "Jaguar", "Artificial2", "Artificial6", "Artificial10"]
    names_ii = ["Ivybridge", "Artificial0"]
    names_iii = ["Artificial1", "Artificial5"]
    names_iv = ["Skylake", "K8"]
    suite = {k: v for k, v in core_bug_suite(max_variants_per_type=1).items()
             if k in ("Serialized", "RegisterReduction")}
    setup = DetectionSetup(
        probes=probes,
        train_designs=[core_microarch(n) for n in names_i],
        val_designs=[core_microarch(n) for n in names_ii],
        stage2_designs=[core_microarch(n) for n in names_ii + names_iii],
        test_designs=[core_microarch(n) for n in names_iv],
        bug_suite=suite,
        cache=SimulationCache(step_cycles=512),
        model_config=ProbeModelConfig(engine="GBT-150"),
    )
    detector = TwoStageDetector(setup)
    detector.prepare()
    return detector


class TestTwoStageIntegration:
    def test_counters_selected_for_every_probe(self, tiny_detector):
        for probe in tiny_detector.setup.probes:
            assert 4 <= len(probe.counters) <= 64

    def test_error_vector_shape_and_positivity(self, tiny_detector):
        skylake = core_microarch("Skylake")
        errors = tiny_detector.error_vector(skylake)
        assert errors.shape == (len(tiny_detector.setup.probes),)
        assert (errors >= 0).all()

    def test_strong_bug_raises_errors(self, tiny_detector):
        skylake = core_microarch("Skylake")
        clean = tiny_detector.error_vector(skylake)
        buggy = tiny_detector.error_vector(skylake, SerializeOpcode(Opcode.SUB))
        assert buggy.max() > clean.max()

    def test_leave_one_out_evaluation(self, tiny_detector):
        result = tiny_detector.evaluate()
        assert set(result.folds) == {"Serialized", "RegisterReduction"}
        assert 0.0 <= result.overall.tpr <= 1.0
        assert 0.0 <= result.overall.fpr <= 1.0
        assert 0.0 <= result.overall.roc_auc <= 1.0
        # Each fold tests bug-free + one variant on both test designs.
        for fold in result.folds.values():
            assert len(fold.labels) == 4
            assert sum(fold.labels) == 2
        assert set(result.severity_of_bug) == {"serialize_xor", "register_reduction_48"}

    def test_summary_row_keys(self, tiny_detector):
        result = tiny_detector.evaluate(bug_types=["Serialized"])
        row = result.summary_row()
        assert {"FPR", "TPR", "ROC AUC", "Precision"}.issubset(row)
