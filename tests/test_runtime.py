"""Tests for the parallel simulation job engine and persistent result store."""

import os

import numpy as np
import pytest

from repro.bugs.core_bugs import SerializeOpcode
from repro.coresim.hooks import CoreBugModel
from repro.detect.dataset import MemorySimulationCache, SimulationCache
from repro.detect.probe import build_probes
from repro.runtime import (
    JobEngine,
    JobFailedError,
    ResultStore,
    SimulationJob,
    TraceRegistry,
    bug_fingerprint,
    config_fingerprint,
    default_jobs,
    trace_digest,
)
from repro.runtime.engine import _chunked
from repro.runtime.store import StoredResult
from repro.uarch import core_microarch, memory_microarch
from repro.workloads import TraceGenerator, build_program, workload
from repro.workloads.isa import Opcode


class ExplodingBug(CoreBugModel):
    """Picklable bug model that fails as soon as simulation starts."""

    name = "exploding"

    def on_simulation_start(self, config) -> None:
        raise RuntimeError("boom at simulation start")


@pytest.fixture(scope="module")
def tiny_trace():
    program = build_program(workload("403.gcc"), seed=11)
    return TraceGenerator(program, seed=12).generate(1500)


@pytest.fixture(scope="module")
def registry(tiny_trace):
    registry = TraceRegistry()
    registry.register(tiny_trace)
    return registry


def _core_jobs(registry, tiny_trace, step=256):
    trace_id = registry.register(tiny_trace)
    jobs = []
    for config_name in ("Skylake", "K8"):
        config = core_microarch(config_name)
        for bug in (None, SerializeOpcode(Opcode.XOR)):
            jobs.append(
                SimulationJob(
                    study="core", config=config, bug=bug, trace_id=trace_id, step=step
                )
            )
    return jobs


def _assert_results_equal(first, second):
    assert len(first) == len(second)
    for a, b in zip(first, second):
        assert a.instructions == b.instructions
        assert a.cycles == b.cycles
        assert np.array_equal(a.ipc, b.ipc)
        assert set(a.counters) == set(b.counters)
        for name in a.counters:
            assert np.array_equal(a.counters[name], b.counters[name]), name


class TestJobIdentity:
    def test_key_is_content_based(self, registry, tiny_trace):
        trace_id = registry.register(tiny_trace)
        job = SimulationJob(
            study="core", config=core_microarch("Skylake"), bug=None,
            trace_id=trace_id, step=256,
        )
        # A structurally equal job built from fresh objects shares the key.
        clone = SimulationJob(
            study="core", config=core_microarch("Skylake"), bug=None,
            trace_id=trace_digest(list(tiny_trace)), step=256,
        )
        assert job.key() == clone.key()
        assert job.seed() == clone.seed()

    def test_key_distinguishes_every_component(self, registry, tiny_trace):
        trace_id = registry.register(tiny_trace)
        base = SimulationJob(
            study="core", config=core_microarch("Skylake"), bug=None,
            trace_id=trace_id, step=256,
        )
        variants = [
            SimulationJob(study="core", config=core_microarch("K8"), bug=None,
                          trace_id=trace_id, step=256),
            SimulationJob(study="core", config=core_microarch("Skylake"),
                          bug=SerializeOpcode(Opcode.XOR), trace_id=trace_id, step=256),
            SimulationJob(study="core", config=core_microarch("Skylake"), bug=None,
                          trace_id=trace_id, step=512),
            SimulationJob(study="memory", config=memory_microarch("Skylake-mem"),
                          bug=None, trace_id=trace_id, step=256),
        ]
        keys = {base.key()}
        for variant in variants:
            assert variant.key() not in keys
            keys.add(variant.key())

    def test_bug_fingerprint_separates_variants(self):
        assert bug_fingerprint(None) == "bug-free"
        xor = bug_fingerprint(SerializeOpcode(Opcode.XOR))
        sub = bug_fingerprint(SerializeOpcode(Opcode.SUB))
        assert xor != sub
        assert bug_fingerprint(SerializeOpcode(Opcode.XOR)) == xor

    def test_config_fingerprint_tracks_content(self):
        assert config_fingerprint(core_microarch("Skylake")) == config_fingerprint(
            core_microarch("Skylake")
        )
        assert config_fingerprint(core_microarch("Skylake")) != config_fingerprint(
            core_microarch("K8")
        )

    def test_trace_digest_is_stable_and_content_sensitive(self, tiny_trace):
        assert trace_digest(tiny_trace) == trace_digest(list(tiny_trace))
        assert trace_digest(tiny_trace[:-1]) != trace_digest(tiny_trace)

    def test_registry_memo_retains_objects(self, tiny_trace):
        registry = TraceRegistry()
        duplicate = list(tiny_trace)
        digest = registry.register(duplicate)
        assert registry.register(tiny_trace) == digest
        assert registry.register(duplicate) == digest
        assert len(registry) == 1
        # The memo must hold strong references: a freed trace's recycled
        # object id could otherwise alias a stale digest.
        assert any(entry[0] is duplicate for entry in registry._by_object.values())

    def test_rejects_unknown_study_and_step(self, registry, tiny_trace):
        trace_id = registry.register(tiny_trace)
        with pytest.raises(ValueError):
            SimulationJob(study="quantum", config=core_microarch("Skylake"),
                          bug=None, trace_id=trace_id, step=256)
        with pytest.raises(ValueError):
            SimulationJob(study="core", config=core_microarch("Skylake"),
                          bug=None, trace_id=trace_id, step=0)


class TestChunking:
    def test_chunks_preserve_order_and_size(self):
        chunks = _chunked(list(range(10)), 3)
        assert chunks == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]
        assert _chunked([], 4) == []

    def test_chunk_size_validation(self):
        with pytest.raises(ValueError):
            _chunked([1], 0)
        with pytest.raises(ValueError):
            JobEngine(jobs=2, chunk_size=0)

    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert default_jobs() == 6
        monkeypatch.setenv("REPRO_JOBS", "-3")
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            default_jobs()


class TestEngine:
    def test_serial_and_parallel_are_identical(self, registry, tiny_trace):
        """Determinism regression: same batch, same counters/IPC, any jobs."""
        jobs = _core_jobs(registry, tiny_trace)
        serial = JobEngine(jobs=1).run(jobs, registry.traces)
        parallel = JobEngine(jobs=2, chunk_size=1).run(jobs, registry.traces)
        _assert_results_equal(serial, parallel)
        assert all(r.ipc.min() > 0 for r in serial)

    def test_duplicate_jobs_simulated_once(self, registry, tiny_trace):
        jobs = _core_jobs(registry, tiny_trace)
        engine = JobEngine(jobs=1)
        results = engine.run(jobs + jobs, registry.traces)
        assert engine.stats.jobs == 2 * len(jobs)
        assert engine.stats.executed == len(jobs)
        _assert_results_equal(results[: len(jobs)], results[len(jobs):])

    def test_progress_callback_reaches_total(self, registry, tiny_trace):
        seen = []
        jobs = _core_jobs(registry, tiny_trace)
        engine = JobEngine(jobs=1, progress=lambda done, total: seen.append((done, total)))
        engine.run(jobs, registry.traces)
        assert seen[-1] == (len(jobs), len(jobs))
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)

    def test_unknown_trace_id_rejected(self, registry, tiny_trace):
        job = SimulationJob(study="core", config=core_microarch("Skylake"),
                            bug=None, trace_id="deadbeef", step=256)
        with pytest.raises(KeyError):
            JobEngine(jobs=1).run([job], registry.traces)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_worker_failure_propagates(self, registry, tiny_trace, jobs):
        trace_id = registry.register(tiny_trace)
        batch = [
            SimulationJob(study="core", config=core_microarch("Skylake"),
                          bug=None, trace_id=trace_id, step=256),
            SimulationJob(study="core", config=core_microarch("Skylake"),
                          bug=ExplodingBug(), trace_id=trace_id, step=256),
        ]
        with pytest.raises(JobFailedError) as excinfo:
            JobEngine(jobs=jobs, chunk_size=1).run(batch, registry.traces)
        assert "boom at simulation start" in str(excinfo.value)
        assert "exploding" in excinfo.value.description


class TestResultStore:
    def test_round_trip_is_bit_exact(self, registry, tiny_trace, tmp_path):
        jobs = _core_jobs(registry, tiny_trace)
        store = ResultStore(tmp_path / "store")
        computed = JobEngine(jobs=1, store=store).run(jobs, registry.traces)
        loaded = [store.get(job.key()) for job in jobs]
        assert all(entry is not None for entry in loaded)
        _assert_results_equal(computed, loaded)

    def test_second_run_hits_store_only(self, registry, tiny_trace, tmp_path):
        jobs = _core_jobs(registry, tiny_trace)
        store = ResultStore(tmp_path / "store")
        first = JobEngine(jobs=1, store=store)
        first.run(jobs, registry.traces)
        assert first.stats.executed == len(jobs)
        assert first.stats.store_hits == 0
        second = JobEngine(jobs=1, store=store)
        results = second.run(jobs, registry.traces)
        assert second.stats.executed == 0
        assert second.stats.store_hits == len(jobs)
        _assert_results_equal(results, [store.get(job.key()) for job in jobs])

    def test_truncated_entry_recomputes_instead_of_crashing(
        self, registry, tiny_trace, tmp_path
    ):
        jobs = _core_jobs(registry, tiny_trace)[:1]
        store = ResultStore(tmp_path / "store")
        engine = JobEngine(jobs=1, store=store)
        intact = engine.run(jobs, registry.traces)
        entry = store._entry_path(jobs[0].key())
        entry.write_bytes(entry.read_bytes()[:20])

        assert store.get(jobs[0].key()) is None
        assert store.stats.corrupt == 1
        assert not entry.exists()

        recomputed = JobEngine(jobs=1, store=store).run(jobs, registry.traces)
        _assert_results_equal(intact, recomputed)
        assert store.get(jobs[0].key()) is not None

    def test_garbage_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        (store.path / "nonsense.npz").write_bytes(b"not a zip archive")
        assert store.get("nonsense") is None
        assert store.stats.corrupt == 1

    def test_eviction_keeps_newest(self, registry, tiny_trace, tmp_path):
        jobs = _core_jobs(registry, tiny_trace)
        store = ResultStore(tmp_path / "store", max_entries=2)
        results = JobEngine(jobs=1).run(jobs, registry.traces)
        for index, (job, result) in enumerate(zip(jobs, results)):
            store.put(job.key(), result)
            path = store._entry_path(job.key())
            os.utime(path, (index + 1, index + 1))
        assert len(store) == 2
        assert store.stats.evicted == len(jobs) - 2
        assert jobs[-1].key() in store
        assert jobs[0].key() not in store

    def test_no_eviction_below_capacity(self, registry, tiny_trace, tmp_path):
        jobs = _core_jobs(registry, tiny_trace)
        store = ResultStore(tmp_path / "store", max_entries=len(jobs) + 1)
        results = JobEngine(jobs=1).run(jobs, registry.traces)
        for job, result in zip(jobs, results):
            store.put(job.key(), result)
        assert len(store) == len(jobs)
        assert store.stats.evicted == 0
        assert all(job.key() in store for job in jobs)

    def test_rejects_bad_capacity(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path / "store", max_entries=0)

    @staticmethod
    def _tiny_result():
        return StoredResult(
            study="core", config_name="X", bug_name="bug-free",
            instructions=8, cycles=16.0, amat=0.0, step=256,
            counters={"c": np.arange(4.0)}, ipc=np.ones(4),
        )

    def test_evict_excludes_fresh_key_on_mtime_tie(self, tmp_path):
        """Regression: on coarse-mtime filesystems the freshly written entry
        can tie with older ones, and its hex name sorting first must not get
        it evicted by the very put() that wrote it."""
        writer = ResultStore(tmp_path / "store")  # no capacity: no eviction yet
        # "00fresh" sorts before both older keys on a full (mtime, name) tie.
        for key in ("aa0", "bb1", "00fresh"):
            writer.put(key, self._tiny_result())
        now = 1_000_000
        for key in ("aa0", "bb1", "00fresh"):
            os.utime(writer._entry_path(key), (now, now))
        store = ResultStore(tmp_path / "store", max_entries=2)
        store._evict(fresh=store._entry_path("00fresh"))
        assert "00fresh" in store
        assert len(store) == 2

    def test_put_never_evicts_what_it_just_wrote(self, tmp_path):
        store = ResultStore(tmp_path / "store", max_entries=2)
        store.put("aa0", self._tiny_result())
        store.put("bb1", self._tiny_result())
        # Push the old entries into the future so the fresh entry would sort
        # strictly oldest — the worst case of the mtime-tie bug.
        future = 4_000_000_000
        os.utime(store._entry_path("aa0"), (future, future))
        os.utime(store._entry_path("bb1"), (future, future))
        store.put("00fresh", self._tiny_result())
        assert "00fresh" in store
        assert store.get("00fresh") is not None
        assert len(store) == 2

    def test_stale_tmp_files_swept_on_init(self, tmp_path):
        first = ResultStore(tmp_path / "store")
        first.put("aa0", self._tiny_result())
        # Simulate writers killed mid-put long ago: orphaned <key>.tmp<pid>
        # files with old mtimes.
        ancient = 1_000_000
        for name in ("deadbeef.tmp4242", "cafe.tmp99"):
            stale = first.path / name
            stale.write_bytes(b"partial")
            os.utime(stale, (ancient, ancient))
        # A *young* temp file may belong to a live writer in another process
        # sharing the store and must survive the sweep.
        live = first.path / "beef.tmp123"
        live.write_bytes(b"in flight")
        # Non-temp foreign files are never touched either.
        foreign = first.path / "notes.txt"
        foreign.write_text("keep me")
        second = ResultStore(tmp_path / "store")
        assert second.stats.tmp_swept == 2
        assert not (second.path / "deadbeef.tmp4242").exists()
        assert not (second.path / "cafe.tmp99").exists()
        assert live.exists()
        assert foreign.exists()
        assert len(second) == 1
        assert second.get("aa0") is not None

    def test_warm_store_writes_without_rescanning(self, tmp_path):
        """Regression: every put used to glob the whole directory, making N
        writes O(N^2); the count is now tracked incrementally."""
        store = ResultStore(tmp_path / "store", max_entries=5_000)
        result = self._tiny_result()
        for index in range(1_000):
            store.put(f"k{index:04d}", result)
        assert store.scans == 1  # the __init__ scan, nothing per-put
        assert len(store) == 1_000

        warm = ResultStore(tmp_path / "store")
        assert warm.scans == 1
        assert len(warm) == 1_000
        warm.put("extra", result)
        assert warm.scans == 1
        assert len(warm) == 1_001

    def test_count_resyncs_after_corrupt_entry(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("aa0", self._tiny_result())
        # An external writer drops in a garbage entry the counter missed.
        (store.path / "garbage.npz").write_bytes(b"junk")
        assert store.get("garbage") is None
        assert not (store.path / "garbage.npz").exists()
        assert len(store) == 1  # resynced from disk, not guessed


class TestShardedStore:
    """The ``shard=XX/`` layout: detection, migration, GC and coexistence."""

    @staticmethod
    def _tiny_result():
        return StoredResult(
            study="core", config_name="X", bug_name="bug-free",
            instructions=8, cycles=16.0, amat=0.0, step=256,
            counters={"c": np.arange(4.0)}, ipc=np.ones(4),
        )

    def test_sharded_entries_land_in_shard_dirs(self, tmp_path):
        store = ResultStore(tmp_path / "store", layout="sharded")
        for key in ("aa00", "aa01", "bb02"):
            store.put(key, self._tiny_result())
        assert store._entry_path("aa00").parent.name == "shard=aa"
        assert (store.path / "shard=aa" / "aa00.npz").exists()
        assert (store.path / "shard=bb" / "bb02.npz").exists()
        assert store.shard_counts() == {"aa": 2, "bb": 1}
        assert len(store) == 3
        assert store.get("aa01") is not None

    def test_layout_marker_survives_reopen(self, tmp_path):
        ResultStore(tmp_path / "store", layout="sharded").put(
            "aa00", self._tiny_result()
        )
        reopened = ResultStore(tmp_path / "store")  # no layout argument
        assert reopened.layout == "sharded"
        assert reopened.get("aa00") is not None

    def test_bad_layout_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path / "store", layout="hashed")

    def test_reshard_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        keys = [f"{prefix}{index}" for prefix in ("aa", "bb") for index in range(2)]
        for key in keys:
            store.put(key, self._tiny_result())
        assert store.layout == "flat"

        assert store.reshard("sharded") == len(keys)
        assert store.layout == "sharded"
        assert sorted(store.keys()) == sorted(keys)
        assert ResultStore(tmp_path / "store").layout == "sharded"
        assert all(store.get(key) is not None for key in keys)

        assert store.reshard("flat") == len(keys)
        assert store.layout == "flat"
        assert not list((store.path).glob("shard=*"))  # empty shards pruned
        assert all(store.get(key) is not None for key in keys)

    def test_locate_tolerates_mid_migration_entries(self, tmp_path):
        # A flat entry written before an interrupted reshard must stay
        # readable from a store opened as sharded (and vice versa).
        flat = ResultStore(tmp_path / "store")
        flat.put("aa00", self._tiny_result())
        sharded = ResultStore(tmp_path / "store", layout="sharded")
        sharded.put("bb01", self._tiny_result())
        assert sharded.get("aa00") is not None  # flat leftover, found anyway
        assert "aa00" in sharded
        assert sorted(sharded.keys()) == ["aa00", "bb01"]

    def test_gc_prunes_outside_roster(self, tmp_path):
        store = ResultStore(tmp_path / "store", layout="sharded")
        for key in ("aa00", "aa01", "bb02", "cc03"):
            store.put(key, self._tiny_result())

        preview = store.gc({"aa00", "bb02"}, dry_run=True)
        assert preview == ["aa01", "cc03"]
        assert len(store) == 4  # dry run touched nothing

        removed = store.gc({"aa00", "bb02"})
        assert removed == ["aa01", "cc03"]
        assert store.stats.gc_removed == 2
        assert sorted(store.keys()) == ["aa00", "bb02"]
        assert store.get("aa00") is not None
        assert not (store.path / "shard=cc").exists()  # emptied shard pruned

    def test_gc_with_superset_roster_removes_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("aa00", self._tiny_result())
        assert store.gc({"aa00", "never-computed"}) == []
        assert store.get("aa00") is not None

    def test_cross_layout_merge(self, tmp_path):
        sharded = ResultStore(tmp_path / "sharded", layout="sharded")
        sharded.put("aa00", self._tiny_result())
        flat = ResultStore(tmp_path / "flat")
        flat.put("bb01", self._tiny_result())

        assert flat.merge_from(sharded) == 1
        assert sorted(flat.keys()) == ["aa00", "bb01"]
        assert flat.layout == "flat"

        other = ResultStore(tmp_path / "sharded2", layout="sharded")
        assert other.merge_from(flat) == 2
        assert sorted(other.keys()) == ["aa00", "bb01"]
        assert (other.path / "shard=aa" / "aa00.npz").exists()

    def test_cli_reshard_info_and_gc(self, tmp_path, capsys):
        from repro.runtime.store_cli import main as store_main

        store = ResultStore(tmp_path / "store")
        for key in ("aa00", "aa01", "bb02"):
            store.put(key, self._tiny_result())

        assert store_main(["reshard", str(tmp_path / "store")]) == 0
        assert "flat -> sharded, 3 entries moved" in capsys.readouterr().out

        assert store_main(["info", str(tmp_path / "store")]) == 0
        output = capsys.readouterr().out
        assert "layout=sharded" in output
        assert "2 shards occupied" in output
        assert "shard=aa: 2" in output

        roster = tmp_path / "roster.txt"
        roster.write_text("# keep these\naa00\nbb02\n")
        assert store_main([
            "gc", str(tmp_path / "store"), "--keep", str(roster), "--dry-run",
        ]) == 0
        assert "would remove 1/3" in capsys.readouterr().out
        assert store_main([
            "gc", str(tmp_path / "store"), "--keep", str(roster),
        ]) == 0
        assert "removed 1/3" in capsys.readouterr().out
        assert sorted(ResultStore(tmp_path / "store").keys()) == ["aa00", "bb02"]

    def test_cli_gc_refuses_empty_roster(self, tmp_path, capsys):
        from repro.runtime.store_cli import main as store_main

        store = ResultStore(tmp_path / "store")
        store.put("aa00", self._tiny_result())
        roster = tmp_path / "empty.txt"
        roster.write_text("# nothing\n")
        code = store_main(["gc", str(tmp_path / "store"), "--keep", str(roster)])
        assert code == 2
        assert "refusing" in capsys.readouterr().out
        assert store.get("aa00") is not None

    def test_cli_gc_missing_roster_fails(self, tmp_path, capsys):
        from repro.runtime.store_cli import main as store_main

        ResultStore(tmp_path / "store").put("aa00", self._tiny_result())
        code = store_main([
            "gc", str(tmp_path / "store"), "--keep", str(tmp_path / "nope"),
        ])
        assert code == 2
        assert "cannot read roster" in capsys.readouterr().out

    def test_sharded_store_backs_an_engine_run(self, registry, tiny_trace, tmp_path):
        jobs = _core_jobs(registry, tiny_trace)
        store = ResultStore(tmp_path / "store", layout="sharded")
        JobEngine(jobs=1, store=store).run(jobs, registry.traces)
        replay = JobEngine(jobs=1, store=store)
        replay.run(jobs, registry.traces)
        assert replay.stats.executed == 0
        assert replay.stats.store_hits == len(jobs)


class TestResumableBatches:
    """A mid-batch failure must not discard finished work (store-backed)."""

    def _good_jobs(self, registry, tiny_trace, configs=("Skylake", "K8", "Cedarview")):
        trace_id = registry.register(tiny_trace)
        return [
            SimulationJob(study="core", config=core_microarch(name), bug=None,
                          trace_id=trace_id, step=256)
            for name in configs
        ]

    def test_serial_rerun_executes_only_unfinished_jobs(
        self, registry, tiny_trace, tmp_path
    ):
        trace_id = registry.register(tiny_trace)
        good = self._good_jobs(registry, tiny_trace)
        boom = SimulationJob(study="core", config=core_microarch("Skylake"),
                             bug=ExplodingBug(), trace_id=trace_id, step=256)
        store = ResultStore(tmp_path / "store")
        # Serial execution preserves input order: good[0], good[1] finish
        # (and are persisted immediately), then the third job explodes.
        with pytest.raises(JobFailedError):
            JobEngine(jobs=1, store=store).run(
                [good[0], good[1], boom, good[2]], registry.traces
            )
        assert good[0].key() in store
        assert good[1].key() in store
        assert good[2].key() not in store

        rerun = JobEngine(jobs=1, store=store)
        results = rerun.run(good, registry.traces)
        assert rerun.stats.store_hits == 2
        assert rerun.stats.executed == 1  # only the unfinished job
        fresh = JobEngine(jobs=1).run(good, registry.traces)
        _assert_results_equal(results, fresh)

    def test_parallel_partial_chunk_results_survive_failure(
        self, registry, tiny_trace, tmp_path
    ):
        trace_id = registry.register(tiny_trace)
        good = self._good_jobs(registry, tiny_trace)
        boom = SimulationJob(study="core", config=core_microarch("Skylake"),
                             bug=ExplodingBug(), trace_id=trace_id, step=256)
        store = ResultStore(tmp_path / "store")
        # One chunk holds everything: the jobs completed before the failing
        # one must still be persisted from the partial chunk outcome.
        with pytest.raises(JobFailedError):
            JobEngine(jobs=2, chunk_size=8, store=store).run(
                good + [boom] + self._good_jobs(registry, tiny_trace, ("Broadwell",)),
                registry.traces,
            )
        assert all(job.key() in store for job in good)

        rerun = JobEngine(jobs=2, chunk_size=8, store=store)
        results = rerun.run(good, registry.traces)
        assert rerun.stats.store_hits == len(good)
        assert rerun.stats.executed == 0
        fresh = JobEngine(jobs=1).run(good, registry.traces)
        _assert_results_equal(results, fresh)

    def test_parallel_rerun_consistency_after_failure(
        self, registry, tiny_trace, tmp_path
    ):
        trace_id = registry.register(tiny_trace)
        good = self._good_jobs(registry, tiny_trace) + self._good_jobs(
            registry, tiny_trace, ("Broadwell",)
        )
        boom = SimulationJob(study="core", config=core_microarch("Skylake"),
                             bug=ExplodingBug(), trace_id=trace_id, step=256)
        store = ResultStore(tmp_path / "store")
        with JobEngine(jobs=2, chunk_size=1, store=store) as engine:
            with pytest.raises(JobFailedError):
                engine.run(good + [boom], registry.traces)
        # Chunk completion order is nondeterministic, but whatever finished
        # was persisted, and the re-run executes exactly the remainder.
        rerun = JobEngine(jobs=1, store=store)
        results = rerun.run(good, registry.traces)
        assert rerun.stats.store_hits + rerun.stats.executed == len(good)
        assert rerun.stats.executed <= len(good)
        fresh = JobEngine(jobs=1).run(good, registry.traces)
        _assert_results_equal(results, fresh)


class TestStoreMerge:
    @staticmethod
    def _tiny_result():
        return StoredResult(
            study="core", config_name="X", bug_name="bug-free",
            instructions=8, cycles=16.0, amat=0.0, step=256,
            counters={"c": np.arange(4.0)}, ipc=np.ones(4),
        )

    def test_merge_disjoint_stores_then_replay_executes_zero(
        self, registry, tiny_trace, tmp_path
    ):
        jobs = _core_jobs(registry, tiny_trace)
        first_half, second_half = jobs[:2], jobs[2:]
        store_a = ResultStore(tmp_path / "a")
        store_b = ResultStore(tmp_path / "b")
        JobEngine(jobs=1, store=store_a).run(first_half, registry.traces)
        JobEngine(jobs=1, store=store_b).run(second_half, registry.traces)

        merged = ResultStore(tmp_path / "merged")
        assert merged.merge_from(store_a) == len(first_half)
        assert merged.merge_from(store_b) == len(second_half)
        assert len(merged) == len(jobs)

        replay = JobEngine(jobs=1, store=merged)
        results = replay.run(jobs, registry.traces)
        assert replay.stats.executed == 0
        assert replay.stats.store_hits == len(jobs)
        _assert_results_equal(results, JobEngine(jobs=1).run(jobs, registry.traces))

    def test_merge_skips_corrupt_and_existing_entries(self, tmp_path):
        source = ResultStore(tmp_path / "src")
        source.put("aa0", self._tiny_result())
        source.put("bb1", self._tiny_result())
        (source.path / "cc2.npz").write_bytes(b"not a zip archive")
        destination = ResultStore(tmp_path / "dst")
        destination.put("aa0", self._tiny_result())  # already present

        merged = destination.merge_from(source)
        assert merged == 1  # bb1 only: aa0 existed, cc2 was corrupt
        assert source.stats.corrupt == 1
        assert sorted(destination.keys()) == ["aa0", "bb1"]

    def test_merge_honours_eviction_limit(self, tmp_path):
        source = ResultStore(tmp_path / "src")
        for index in range(4):
            source.put(f"k{index}", self._tiny_result())
        destination = ResultStore(tmp_path / "dst", max_entries=2)
        destination.merge_from(source)
        assert len(destination) == 2
        assert destination.stats.evicted == 2

    def test_merge_into_itself_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        other = ResultStore(tmp_path / "store")
        with pytest.raises(ValueError):
            store.merge_from(other)

    def test_cli_merge_and_info(self, registry, tiny_trace, tmp_path, capsys):
        from repro.runtime.store_cli import main as store_main

        jobs = _core_jobs(registry, tiny_trace)
        store_a = ResultStore(tmp_path / "a")
        store_b = ResultStore(tmp_path / "b")
        JobEngine(jobs=1, store=store_a).run(jobs[:2], registry.traces)
        JobEngine(jobs=1, store=store_b).run(jobs[2:], registry.traces)

        code = store_main([
            "merge", str(tmp_path / "a"), str(tmp_path / "b"),
            str(tmp_path / "merged"),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert f"merged 2/2" in output

        replay = JobEngine(jobs=1, store=ResultStore(tmp_path / "merged"))
        replay.run(jobs, registry.traces)
        assert replay.stats.executed == 0

        assert store_main(["info", str(tmp_path / "merged")]) == 0
        assert "4 entries" in capsys.readouterr().out

    def test_cli_merge_missing_source_fails(self, tmp_path, capsys):
        from repro.runtime.store_cli import main as store_main

        code = store_main(["merge", str(tmp_path / "nope"), str(tmp_path / "dst")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().out

    def test_cli_merge_into_itself_fails_cleanly(self, tmp_path, capsys):
        from repro.runtime.store_cli import main as store_main

        store = ResultStore(tmp_path / "store")
        store.put("aa0", self._tiny_result())
        code = store_main(["merge", str(tmp_path / "store"), str(tmp_path / "store")])
        assert code == 2
        assert "cannot merge a store into itself" in capsys.readouterr().out


class TestCacheIntegration:
    def test_warm_parallel_matches_serial_observations(self):
        probes = build_probes(["458.sjeng"], instructions_per_benchmark=4000,
                              interval_size=2000, max_simpoints_per_benchmark=2, seed=3)
        designs = [core_microarch("Skylake"), core_microarch("K8")]
        bugs = [None, SerializeOpcode(Opcode.SUB)]
        requests = [(p, d, b) for p in probes for d in designs for b in bugs]

        serial = SimulationCache(step_cycles=256)
        serial.warm(requests)
        parallel = SimulationCache(
            step_cycles=256, engine=JobEngine(jobs=2, chunk_size=1)
        )
        dispatched = parallel.warm(requests)
        assert dispatched == len(requests)
        assert parallel.misses == serial.misses == len(requests)

        for probe, design, bug in requests:
            a = serial.get(probe, design, bug)
            b = parallel.get(probe, design, bug)
            assert a.ipc == b.ipc
            assert np.array_equal(a.series.ipc, b.series.ipc)
            for name in a.series.counters:
                assert np.array_equal(a.series.counters[name], b.series.counters[name])
        # Everything was warmed: the gets above added no misses.
        assert parallel.misses == len(requests)

    def test_store_shared_between_cache_instances(self, tmp_path):
        probes = build_probes(["458.sjeng"], instructions_per_benchmark=4000,
                              interval_size=2000, max_simpoints_per_benchmark=1, seed=3)
        design = core_microarch("Skylake")
        store = ResultStore(tmp_path / "store")

        first = SimulationCache(step_cycles=256, engine=JobEngine(jobs=1, store=store))
        first.get(probes[0], design)
        assert first.engine.stats.executed == 1

        second = SimulationCache(step_cycles=256, engine=JobEngine(jobs=1, store=store))
        observation = second.get(probes[0], design)
        assert second.engine.stats.executed == 0
        assert second.engine.stats.store_hits == 1
        assert observation.ipc == first.get(probes[0], design).ipc

    def test_memory_cache_targets_through_engine(self, tmp_path):
        probes = build_probes(["426.mcf"], instructions_per_benchmark=6000,
                              interval_size=3000, max_simpoints_per_benchmark=1, seed=5)
        design = memory_microarch("Skylake-mem")
        store = ResultStore(tmp_path / "store")
        amat_cache = MemorySimulationCache(
            step_instructions=500, target_metric="amat",
            engine=JobEngine(jobs=1, store=store),
        )
        ipc_cache = MemorySimulationCache(
            step_instructions=500, target_metric="ipc",
            engine=JobEngine(jobs=1, store=store),
        )
        amat_obs = amat_cache.get(probes[0], design)
        ipc_obs = ipc_cache.get(probes[0], design)
        # Same underlying simulation served from the store the second time...
        assert ipc_cache.engine.stats.store_hits == 1
        assert ipc_cache.engine.stats.executed == 0
        # ... but each cache derives its own target metric.
        assert amat_obs.target_metric > 1.0  # AMAT is at least the L1 latency
        assert ipc_obs.target_metric == ipc_obs.ipc
