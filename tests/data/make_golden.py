"""Regenerate the pinned golden artifacts.

Two files are produced:

``golden_series.json``
    Pinned counter-series digests of the frozen seed pipeline.

``counter_manifest.json``
    The authoritative **counter-name universe** per kernel: the union, over
    every microarchitecture preset, of the counter names each kernel
    actually sampled on the golden trace.  ``repro-lint``'s counter-contract
    checker compares this observed universe against the statically extracted
    emission sites, closing the loop between what the code *says* it counts
    and what a run *actually* produced.

One digest per microarchitecture preset, computed from the **frozen seed
pipeline** (``repro.coresim._reference``) on the deterministic golden trace
below, bug-free.  ``tests/test_differential.py`` then checks the live
kernels (scalar, vector and native) against these digests in seconds, so
oracle drift is caught without ever executing the slow reference pipeline
in CI.  Before writing, this script verifies every live kernel against the
freshly computed reference digests, so a drifted kernel cannot be pinned.

Run this ONLY for a deliberate, reviewed change to simulation semantics::

    PYTHONPATH=src python tests/data/make_golden.py

and commit the refreshed JSON together with the change that motivated it.
"""

import hashlib
import json
import sys
from pathlib import Path

#: Sampling step used for every golden simulation.
STEP_CYCLES = 256

#: Golden trace shape: long enough to exercise multiple sample steps on
#: every preset, short enough to regenerate in under a minute.
TRACE_LENGTH = 1800


def golden_trace():
    """The deterministic golden trace (shared by script and tests)."""
    from repro.workloads import TraceGenerator, build_program, decode_trace, workload

    program = build_program(workload("403.gcc"), seed=11)
    return decode_trace(TraceGenerator(program, seed=12).generate(TRACE_LENGTH))


def series_digest(result) -> str:
    """Content digest of a SimulationResult's sampled counter series."""
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(f"cycles={result.cycles};instr={result.instructions};".encode())
    series = result.series
    hasher.update(f"step={series.step_cycles};".encode())
    for name in sorted(series.counters):
        hasher.update(name.encode())
        hasher.update(series.counters[name].astype("<f8").tobytes())
    hasher.update(b"|ipc|")
    hasher.update(series.ipc.astype("<f8").tobytes())
    return hasher.hexdigest()


def main() -> int:
    from repro.coresim import native_available, simulate_trace
    from repro.coresim._reference import reference_simulate_trace
    from repro.uarch import all_core_microarches

    kernels = ["scalar", "vector"]
    if native_available():
        kernels.append("native")
    else:
        print("WARNING: no C compiler found; native kernel NOT verified")
    trace = golden_trace()
    digests = {}
    observed: "dict[str, set]" = {name: set() for name in ["reference", *kernels]}
    for config in all_core_microarches():
        result = reference_simulate_trace(
            config, list(trace), step_cycles=STEP_CYCLES
        )
        digests[config.name] = series_digest(result)
        observed["reference"].update(result.series.counters)
        # refuse to pin digests a live kernel cannot reproduce
        for kernel in kernels:
            live_result = simulate_trace(
                config, trace, step_cycles=STEP_CYCLES, kernel=kernel
            )
            observed[kernel].update(live_result.series.counters)
            live = series_digest(live_result)
            if live != digests[config.name]:
                raise SystemExit(
                    f"{config.name}: {kernel} kernel diverges from the "
                    f"reference (got {live}); fix the kernel before pinning"
                )
        print(f"{config.name:14s} {digests[config.name]}")
    payload = {
        "comment": (
            "Golden counter-series digests of the frozen seed pipeline "
            "(bug-free, default trace). Regenerate ONLY via make_golden.py "
            "for a deliberate semantic change."
        ),
        "step_cycles": STEP_CYCLES,
        "trace_length": TRACE_LENGTH,
        "kernels_verified": kernels,
        "digests": dict(sorted(digests.items())),
    }
    out = Path(__file__).parent / "golden_series.json"
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out}")

    manifest = {
        "comment": (
            "Observed counter-name universe per kernel (union over every "
            "preset, bug-free golden trace). Consumed by repro-lint's "
            "counter-contract checker. Regenerate via make_golden.py."
        ),
        "step_cycles": STEP_CYCLES,
        "trace_length": TRACE_LENGTH,
        "kernels": {name: sorted(names) for name, names in observed.items()},
    }
    manifest_out = Path(__file__).parent / "counter_manifest.json"
    with open(manifest_out, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
        handle.write("\n")
    print(f"wrote {manifest_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
