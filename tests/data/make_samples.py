"""Regenerate the golden sample traces checked into ``tests/data/``.

Run from the repository root::

    PYTHONPATH=src python tests/data/make_samples.py

The outputs are deterministic (fixed workload seeds, gzip mtime pinned to
zero) and are **golden**: tests and CI ingest the committed files and assert
digest stability, so only regenerate them when the on-disk formats themselves
change — and update `tests/test_ingest.py`'s pinned digests when you do.

The files are named after SPEC CPU2006 benchmarks because the ingestion
pipeline uses the file stem as the benchmark name; `403.gcc` in particular
must exist for the Figure 3 experiment to run on ingested probes.
"""

from __future__ import annotations

from pathlib import Path

from repro.workloads import TraceGenerator, build_program, workload
from repro.workloads.ingest import write_champsim, write_gem5, write_k6
from repro.workloads.memsynth import memsynth_trace

DATA_DIR = Path(__file__).resolve().parent

#: (file name, source benchmark, program seed, trace seed, instructions)
SAMPLES = [
    ("403.gcc.champsim.gz", "403.gcc", 21, 22, 9_600),
    ("458.sjeng.champsim.xz", "458.sjeng", 31, 32, 9_600),
    ("433.milc.gem5.gz", "433.milc", 41, 42, 9_600),
]

#: (file name, memsynth archetype, seed, instructions) — the k6 writer only
#: emits memory traffic, so the instruction count is sized to yield three
#: full 3000-record SimPoint intervals (with a sub-half tail that the
#: interval splitter drops).
K6_SAMPLES = [
    ("kvstore.k6.gz", "kv-store", 52, 25_000),
]


def main() -> None:
    for name, benchmark, program_seed, trace_seed, instructions in SAMPLES:
        program = build_program(workload(benchmark), seed=program_seed)
        uops = TraceGenerator(program, seed=trace_seed).generate(instructions)
        path = DATA_DIR / name
        writer = write_champsim if ".champsim" in name else write_gem5
        records = writer(path, uops)
        print(f"{path.name}: {records} records, {path.stat().st_size} bytes")
    for name, archetype, seed, instructions in K6_SAMPLES:
        uops = memsynth_trace(archetype, instructions, seed=seed)
        path = DATA_DIR / name
        records = write_k6(path, uops)
        print(f"{path.name}: {records} records, {path.stat().st_size} bytes")


if __name__ == "__main__":
    main()
