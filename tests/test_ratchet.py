"""Tests for the perf trajectory ratchet (repro.bench.ratchet)."""

import json

import pytest

from repro.bench.ratchet import (
    DEFAULT_FLOOR,
    DEFAULT_TOLERANCE,
    evaluate,
    main,
    read_speedup,
)


def _write_report(path, speedup, **extra):
    payload = {"single": {"aggregate_speedup": speedup}, **extra}
    path.write_text(json.dumps(payload))
    return str(path)


class TestEvaluate:
    def test_median_of_three_gates(self):
        result = evaluate([3.0, 3.4, 3.2], previous=None, floor=2.0)
        assert result.ok
        assert result.median == 3.2
        assert result.threshold == 2.0

    def test_static_floor_fails_without_previous(self):
        result = evaluate([1.5, 1.6, 1.4], previous=None, floor=2.0)
        assert not result.ok
        assert "REGRESSION" in result.message

    def test_previous_ratchets_threshold_up(self):
        # Median 3.0 clears the 2.0 floor but not 4.0 * (1 - 0.25) = 3.0...
        ok = evaluate([3.0], previous=4.0, floor=2.0, tolerance=0.25)
        assert ok.ok  # exactly at threshold passes
        bad = evaluate([2.9], previous=4.0, floor=2.0, tolerance=0.25)
        assert not bad.ok
        assert bad.threshold == pytest.approx(3.0)

    def test_noise_within_tolerance_passes(self):
        # A 15% dip on a noisy 1-vCPU runner must not fail the build.
        result = evaluate([3.4 * 0.85], previous=3.4, tolerance=DEFAULT_TOLERANCE)
        assert result.ok

    def test_previous_below_floor_keeps_floor(self):
        result = evaluate([2.1], previous=2.05, floor=2.0, tolerance=0.25)
        assert result.threshold == 2.0
        assert result.ok

    def test_input_validation(self):
        with pytest.raises(ValueError):
            evaluate([], previous=None)
        with pytest.raises(ValueError):
            evaluate([3.0], previous=None, tolerance=1.5)

    def test_defaults_are_sane(self):
        assert 0 < DEFAULT_TOLERANCE < 1
        assert DEFAULT_FLOOR >= 1


class TestCli:
    def test_pass_with_fallback_floor_and_emit(self, tmp_path, capsys):
        reports = [
            _write_report(tmp_path / f"bench-{i}.json", speedup)
            for i, speedup in enumerate([3.1, 3.3, 3.0])
        ]
        emitted = tmp_path / "BENCH_simulation.json"
        code = main(reports + [
            "--previous", str(tmp_path / "missing.json"),
            "--emit", str(emitted),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "static floor" in output
        # The emitted artifact is the median run's report.
        assert read_speedup(emitted) == 3.1

    def test_regression_vs_previous_fails(self, tmp_path, capsys):
        reports = [_write_report(tmp_path / "bench.json", 3.0)]
        previous = _write_report(tmp_path / "prev.json", 5.0)
        code = main(reports + ["--previous", previous])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_corrupt_previous_falls_back_to_floor(self, tmp_path, capsys):
        report = _write_report(tmp_path / "bench.json", 3.0)
        bad = tmp_path / "prev.json"
        bad.write_text("{not json")
        code = main([report, "--previous", str(bad), "--floor", "2.0"])
        assert code == 0
        assert "previous artifact unusable" in capsys.readouterr().out

    def test_real_bench_report_is_readable(self, tmp_path):
        # The ratchet consumes what repro-bench actually writes (schema v2).
        from repro.bench.perf import SCHEMA_VERSION

        report = _write_report(
            tmp_path / "bench.json", 3.3, schema_version=SCHEMA_VERSION
        )
        assert read_speedup(report) == 3.3
