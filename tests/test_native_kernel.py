"""Native (compiled C) kernel: build layer, fallback semantics, identity.

The bit-identity of the native kernel against the scalar/reference oracle
is hammered by ``tests/test_differential.py`` (fuzz + golden digests);
this file covers what the differential suite cannot: the build cache, the
compiler-discovery/override knobs, the graceful degradation when no
compiler exists or the compile fails, and the ``auto`` selection policy.

Tests that re-point ``REPRO_NATIVE_CC``/``REPRO_NATIVE_CACHE`` reset the
build layer's memoised state around themselves so the rest of the session
keeps its already-loaded library.
"""

import shutil
import warnings

import pytest

from repro.bugs.core_bugs import RegisterReduction, SerializeOpcode
from repro.bugs.registry import core_bug_suite
from repro.coresim import choose_kernel, simulate_trace
from repro.coresim.native import (
    CACHE_ENV_VAR,
    COMPILER_ENV_VAR,
    NativeKernelUnavailable,
    find_compiler,
    native_available,
    simulate_batch_native,
    supports_native,
)
from repro.coresim.native import build as native_build
from repro.coresim.vector import supports_vector
from repro.uarch import core_microarch
from repro.workloads import (
    Opcode,
    TraceGenerator,
    build_program,
    decode_trace,
    workload,
)


def _assert_identical(a, b, context):
    import numpy as np

    assert a.cycles == b.cycles, context
    assert a.instructions == b.instructions, context
    assert set(a.series.counters) == set(b.series.counters), context
    for name in a.series.counters:
        assert np.array_equal(a.series.counters[name], b.series.counters[name]), (
            context,
            name,
        )


@pytest.fixture()
def fresh_build_state():
    """Reset the build layer's memoised state before AND after the test."""
    native_build._reset_for_tests()
    yield
    native_build._reset_for_tests()


@pytest.fixture()
def short_trace():
    program = build_program(workload("403.gcc"), seed=21)
    return decode_trace(TraceGenerator(program, seed=22).generate(700))


class TestEligibility:
    def test_supports_native_mirrors_supports_vector(self):
        assert supports_native(None)
        for _, variants in sorted(core_bug_suite().items()):
            for bug in variants:
                assert supports_native(bug) == supports_vector(bug), bug.name

    def test_ineligible_bug_raises_unavailable(self, short_trace):
        if not native_available():
            pytest.skip("no C compiler on this host")
        with pytest.raises(NativeKernelUnavailable):
            simulate_batch_native(
                core_microarch("K8"),
                [short_trace],
                bug=SerializeOpcode(Opcode.XOR),
                step_cycles=256,
            )

    def test_empty_trace_rejected(self):
        if not native_available():
            pytest.skip("no C compiler on this host")
        with pytest.raises(ValueError):
            simulate_batch_native(
                core_microarch("K8"), [decode_trace([])], step_cycles=64
            )


class TestDirectIdentity:
    def test_simulate_batch_native_matches_scalar(self, short_trace):
        if not native_available():
            pytest.skip("no C compiler on this host")
        config = core_microarch("Cedarview")
        for bug in (None, RegisterReduction(16)):
            native = simulate_batch_native(
                config, [short_trace], bug=bug, step_cycles=256
            )[0]
            scalar = simulate_trace(
                config, short_trace, bug=bug, step_cycles=256, kernel="scalar"
            )
            _assert_identical(scalar, native, f"direct bug={bug}")


class TestFallback:
    def test_missing_compiler_falls_back_with_one_warning(
        self, fresh_build_state, monkeypatch, short_trace
    ):
        monkeypatch.setenv(COMPILER_ENV_VAR, "/nonexistent/compiler-xyz")
        assert find_compiler() is None
        config = core_microarch("Skylake")
        with pytest.warns(RuntimeWarning, match="falling back to the scalar"):
            degraded = simulate_trace(
                config, short_trace, step_cycles=256, kernel="native"
            )
        # second call: memoised None, no second warning, still correct
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = simulate_trace(
                config, short_trace, step_cycles=256, kernel="native"
            )
        scalar = simulate_trace(config, short_trace, step_cycles=256, kernel="scalar")
        _assert_identical(scalar, degraded, "no-compiler fallback")
        _assert_identical(scalar, again, "no-compiler fallback (memoised)")

    def test_failed_compile_falls_back(
        self, fresh_build_state, monkeypatch, tmp_path, short_trace
    ):
        false_bin = shutil.which("false")
        if false_bin is None:
            pytest.skip("no `false` binary to stand in for a broken compiler")
        monkeypatch.setenv(COMPILER_ENV_VAR, false_bin)
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "cache"))
        config = core_microarch("Skylake")
        with pytest.warns(RuntimeWarning, match="falling back to the scalar"):
            degraded = simulate_trace(
                config, short_trace, step_cycles=256, kernel="native"
            )
        scalar = simulate_trace(config, short_trace, step_cycles=256, kernel="scalar")
        _assert_identical(scalar, degraded, "compile-failure fallback")
        # the failed build leaves no artifact behind
        cache = tmp_path / "cache"
        assert not cache.exists() or not list(cache.glob("*.so"))

    def test_auto_resolves_to_scalar_without_compiler(
        self, fresh_build_state, monkeypatch, short_trace
    ):
        monkeypatch.setenv(COMPILER_ENV_VAR, "/nonexistent/compiler-xyz")
        assert choose_kernel(None) == "scalar"
        config = core_microarch("K8")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # availability probe may warn
            auto = simulate_trace(config, short_trace, step_cycles=256, kernel="auto")
        scalar = simulate_trace(config, short_trace, step_cycles=256, kernel="scalar")
        _assert_identical(scalar, auto, "auto->scalar without compiler")


class TestBuildCache:
    def test_build_cache_reused_across_loads(
        self, fresh_build_state, monkeypatch, tmp_path
    ):
        if find_compiler() is None:
            pytest.skip("no C compiler on this host")
        cache = tmp_path / "native-cache"
        monkeypatch.setenv(CACHE_ENV_VAR, str(cache))
        first = native_build.library_path()
        assert first is not None and first.parent == cache
        artifacts = list(cache.glob("repro_core_*.so"))
        assert len(artifacts) == 1
        mtime = artifacts[0].stat().st_mtime_ns
        # a fresh process-equivalent resolve hits the cache, not the compiler
        # (the --version probe is the only subprocess allowed through)
        native_build._reset_for_tests()
        real_run = native_build.subprocess.run

        def version_only(cmd, *args, **kwargs):
            if "--version" in cmd:
                return real_run(cmd, *args, **kwargs)
            pytest.fail("cache hit must not invoke the compiler")

        monkeypatch.setattr(native_build.subprocess, "run", version_only)
        second = native_build.library_path()
        assert second == first
        assert artifacts[0].stat().st_mtime_ns == mtime

    def test_unusable_override_disables_rather_than_discovers(
        self, fresh_build_state, monkeypatch
    ):
        """An explicit but broken REPRO_NATIVE_CC must not silently fall
        back to PATH discovery — forced-failure CI legs depend on this."""
        monkeypatch.setenv(COMPILER_ENV_VAR, "/nonexistent/compiler-xyz")
        assert find_compiler() is None
        assert not native_available()

    def test_empty_override_disables(self, fresh_build_state, monkeypatch):
        monkeypatch.setenv(COMPILER_ENV_VAR, "   ")
        assert find_compiler() is None


class TestAutoPolicy:
    def test_auto_prefers_native_when_available(self):
        if not native_available():
            pytest.skip("no C compiler on this host")
        assert choose_kernel(None) == "native"
        assert choose_kernel(RegisterReduction(8)) == "native"
        # hook-overriding bugs always take the scalar path
        assert choose_kernel(SerializeOpcode(Opcode.XOR)) == "scalar"

    def test_auto_kernel_end_to_end(self, short_trace):
        config = core_microarch("Broadwell")
        auto = simulate_trace(config, short_trace, step_cycles=256, kernel="auto")
        scalar = simulate_trace(config, short_trace, step_cycles=256, kernel="scalar")
        _assert_identical(scalar, auto, "auto end-to-end")
