"""Tests for the memory-hierarchy simulator and memory bugs."""

import pytest

from repro.bugs import (
    EvictMRU,
    LoadMissDelay,
    NoAgeUpdateOnAccess,
    SPPDroppedPrefetches,
    SPPLeastConfidence,
    SPPSignatureReset,
)
from repro.memsim import (
    MemoryHierarchySim,
    NextLinePrefetcher,
    ReplacementCache,
    SignaturePathPrefetcher,
    build_prefetcher,
    simulate_memory_trace,
)
from repro.memsim.hooks import MemoryBugModel
from repro.uarch import CacheConfig, kb, memory_microarch


class TestReplacementCache:
    def _cache(self, bug=None):
        return ReplacementCache("l1d", CacheConfig(size=512, associativity=2, latency=2,
                                                   line_size=64), bug or MemoryBugModel())

    def test_hit_miss_accounting(self):
        cache = self._cache()
        assert cache.access(0x0) is False
        assert cache.access(0x0) is True
        assert cache.misses == 1 and cache.accesses == 2

    def test_mru_eviction_bug_changes_victim(self):
        clean = self._cache()
        buggy = self._cache(EvictMRU("l1d"))
        stride = 64 * 4  # 4 sets -> same-set lines
        for cache in (clean, buggy):
            cache.access(0)
            cache.access(stride)
            cache.access(2 * stride)  # eviction happens here
        assert clean.access(0) is False       # LRU evicted line 0
        assert buggy.access(0) is True        # MRU eviction kept line 0

    def test_prefetch_usefulness_tracking(self):
        cache = self._cache()
        cache.prefetch_fill(0x1000)
        assert cache.prefetch_fills == 1
        assert cache.access(0x1000) is True
        assert cache.useful_prefetches == 1

    def test_stats_and_reset(self):
        cache = self._cache()
        cache.access(0x40)
        stats = cache.stats()
        assert stats["mem.l1d.accesses"] == 1.0
        cache.reset_stats()
        assert cache.stats()["mem.l1d.accesses"] == 0.0


class TestPrefetchers:
    def test_next_line(self):
        prefetcher = NextLinePrefetcher(line_size=64, degree=2)
        requests = prefetcher.observe(0x1000)
        assert [r.address for r in requests] == [0x1040, 0x1080]
        assert prefetcher.issued == 2

    def test_spp_learns_stride(self):
        spp = SignaturePathPrefetcher(line_size=64, degree=2)
        requests = []
        for i in range(32):
            requests = spp.observe(0x10000 + i * 64)
        assert spp.issued > 0
        assert any(r.address > 0x10000 + 31 * 64 for r in requests)

    def test_spp_signature_reset_bug_changes_behaviour(self):
        clean = SignaturePathPrefetcher(line_size=64, degree=2)
        buggy = SignaturePathPrefetcher(line_size=64, degree=2, bug=SPPSignatureReset())
        pattern = [0, 1, 3, 4, 6, 7, 9, 10, 12, 13, 15, 16, 18, 19, 21]
        clean_addrs, buggy_addrs = [], []
        for block in pattern:
            clean_addrs += [r.address for r in clean.observe(0x20000 + block * 64)]
            buggy_addrs += [r.address for r in buggy.observe(0x20000 + block * 64)]
        assert clean_addrs != buggy_addrs

    def test_spp_dropped_prefetches_counted(self):
        buggy = SignaturePathPrefetcher(line_size=64, degree=2,
                                        bug=SPPDroppedPrefetches(1))
        for i in range(32):
            assert buggy.observe(0x30000 + i * 64) == []
        assert buggy.dropped > 0

    def test_build_prefetcher_factory(self):
        assert build_prefetcher("none", 64, 1, MemoryBugModel()).observe(0) == []
        with pytest.raises(ValueError):
            build_prefetcher("stream", 64, 1, MemoryBugModel())


class TestMemoryHierarchySim:
    def test_basic_run(self, gcc_trace):
        config = memory_microarch("Skylake-mem")
        result = simulate_memory_trace(config, gcc_trace, step_instructions=1000)
        assert result.instructions > 0
        assert result.amat >= config.l1d.latency
        assert result.series.num_steps >= 2
        assert "mem.amat" in result.series.counters

    def test_bugs_change_behaviour(self, gcc_trace):
        config = memory_microarch("Skylake-mem")
        clean = simulate_memory_trace(config, gcc_trace)
        for bug in (LoadMissDelay("l1d", 16, 20), SPPLeastConfidence()):
            buggy = simulate_memory_trace(config, gcc_trace, bug=bug)
            assert buggy.amat > clean.amat

    def test_no_age_update_hook_direction(self):
        bug = NoAgeUpdateOnAccess("l2")
        assert bug.update_replacement_on_access("l2") is False
        assert bug.update_replacement_on_access("l1d") is True

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            MemoryHierarchySim(memory_microarch("Skylake-mem")).run([])
