"""Tests for memsynth generators, multi-program mixes and the scorecard."""

from pathlib import Path

import pytest

from repro.detect.probe import MemsynthProbeSource, build_mix_probes
from repro.memsim import llc_mpki, simulate_memory_trace
from repro.runtime import trace_digest
from repro.uarch import memory_microarch
from repro.workloads.memsynth import (
    MEMSYNTH_WORKLOADS,
    memsynth_num_blocks,
    memsynth_trace,
)
from repro.workloads.mixes import (
    COMPONENT_ADDRESS_STRIDE,
    COMPONENT_PC_STRIDE,
    DEFAULT_MIXES,
    MixSpec,
    build_mix,
    build_mixes,
)

DATA_DIR = Path(__file__).resolve().parent / "data"

#: A memsynth-only spec: cheap to build and free of file dependencies.
SYNTH_SPEC = MixSpec("synthmix", MEMSYNTH_WORKLOADS, "all four archetypes")


class TestMemsynth:
    def test_every_archetype_generates(self):
        for name in MEMSYNTH_WORKLOADS:
            uops = memsynth_trace(name, 2_000, seed=5)
            assert len(uops) == 2_000
            ids = {u.block_id for u in uops}
            assert ids == set(range(memsynth_num_blocks(uops)))
            assert any(u.is_mem for u in uops)

    def test_deterministic_per_seed(self):
        for name in MEMSYNTH_WORKLOADS:
            a = memsynth_trace(name, 1_500, seed=9)
            b = memsynth_trace(name, 1_500, seed=9)
            assert a == b
            assert trace_digest(a) == trace_digest(b)
            c = memsynth_trace(name, 1_500, seed=10)
            assert trace_digest(c) != trace_digest(a)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown memsynth workload"):
            memsynth_trace("cache-blender", 100)

    def test_non_positive_length_raises(self):
        with pytest.raises(ValueError, match="positive"):
            memsynth_trace("kv-store", 0)

    def test_intensity_extremes(self):
        """high-reuse must sit far below monotonic-leak on the same design."""
        design = memory_microarch("Skylake-mem")
        reuse = llc_mpki(simulate_memory_trace(
            design, memsynth_trace("high-reuse", 6_000, seed=1)))
        leak = llc_mpki(simulate_memory_trace(
            design, memsynth_trace("monotonic-leak", 6_000, seed=1)))
        assert reuse < leak

    def test_probe_source(self):
        probes = MemsynthProbeSource(
            workloads=("kv-store", "web-server"),
            instructions_per_workload=6_000,
            interval_size=2_000,
            max_simpoints_per_workload=2,
            seed=0,
        ).build()
        assert {p.benchmark for p in probes} == {"kv-store", "web-server"}
        for benchmark in ("kv-store", "web-server"):
            weights = [p.weight for p in probes if p.benchmark == benchmark]
            assert weights and abs(sum(weights) - 1.0) < 1e-9


class TestMixBuild:
    def test_deterministic_digests(self):
        first = build_mix(SYNTH_SPEC, instructions=4_000, seed=3)
        second = build_mix(SYNTH_SPEC, instructions=4_000, seed=3)
        assert first.uops == second.uops
        assert first.digest == second.digest

    def test_all_default_mixes_build(self):
        for mix in build_mixes(DEFAULT_MIXES, instructions=2_000):
            assert len(mix) == 2_000
            assert len(mix.components) == 4
            ids = {u.block_id for u in mix.uops}
            assert ids == set(range(mix.num_blocks))

    def test_provenance_covers_stream_in_chunks(self):
        chunk = 32
        mix = build_mix(SYNTH_SPEC, instructions=4_000, chunk=chunk, seed=1)
        assert sum(count for _, count in mix.provenance) == len(mix)
        assert all(1 <= count <= chunk for _, count in mix.provenance)
        per_component = [0] * len(SYNTH_SPEC.components)
        for index, count in mix.provenance:
            per_component[index] += count
        assert per_component == [c.instructions for c in mix.components]

    def test_components_relocated_into_disjoint_slots(self):
        mix = build_mix(SYNTH_SPEC, instructions=4_000, seed=2)
        cursor = 0
        for index, count in mix.provenance:
            for uop in mix.uops[cursor:cursor + count]:
                assert uop.pc // COMPONENT_PC_STRIDE == index
                if uop.address is not None:
                    assert uop.address // COMPONENT_ADDRESS_STRIDE == index
            cursor += count

    def test_ingested_component(self):
        spec = MixSpec("filemix", ("kvstore", "high-reuse"))
        mix = build_mix(spec, instructions=2_000, seed=0, trace_dir=DATA_DIR)
        kinds = {c.name: c.kind for c in mix.components}
        assert kinds == {"kvstore": "ingested", "high-reuse": "memsynth"}
        assert len(mix) == 2_000

    def test_unknown_component_raises(self):
        spec = MixSpec("badmix", ("no-such-workload",))
        with pytest.raises(KeyError, match="unknown mix component"):
            build_mix(spec, instructions=1_000)

    def test_validation(self):
        with pytest.raises(ValueError, match="no components"):
            build_mix(MixSpec("empty", ()), instructions=1_000)
        with pytest.raises(ValueError, match="instructions"):
            build_mix(SYNTH_SPEC, instructions=0)
        with pytest.raises(ValueError, match="chunk"):
            build_mix(SYNTH_SPEC, instructions=100, chunk=0)

    def test_short_component_drops_out(self):
        """A short ingested file exhausts; the mix still fills from the rest."""
        spec = MixSpec("lopsided", ("high-reuse",))
        mix = build_mix(spec, instructions=1_000, seed=0)
        assert len(mix) == 1_000

    def test_mpki_ordering_endpoints(self):
        """mix1 (cache-resident) must sit far below mix7 (cache-hostile)."""
        design = memory_microarch("Skylake-mem")
        mix1 = build_mix(DEFAULT_MIXES[0], instructions=6_000, seed=7)
        mix7 = build_mix(DEFAULT_MIXES[-1], instructions=6_000, seed=7)
        mpki1 = llc_mpki(simulate_memory_trace(design, mix1.decoded))
        mpki7 = llc_mpki(simulate_memory_trace(design, mix7.decoded))
        assert mpki1 < mpki7


class TestMixProbes:
    def test_probe_shapes(self):
        mixes = build_mixes(DEFAULT_MIXES[:2], instructions=6_000)
        probes = build_mix_probes(mixes, interval_size=2_000,
                                  max_simpoints_per_mix=2, seed=0)
        assert {p.benchmark for p in probes} == {"mix1", "mix2"}
        for name in ("mix1", "mix2"):
            weights = [p.weight for p in probes if p.benchmark == name]
            assert weights and abs(sum(weights) - 1.0) < 1e-9
        assert all(len(p.trace) == 2_000 for p in probes)


class TestMixScorecard:
    def test_runner_registration(self):
        from repro.experiments import runner

        assert "mixes" in runner.EXPERIMENTS
        assert "mixes" in runner.OPT_IN  # excluded from default sweeps

    def test_scale_knobs_exist(self):
        from repro.experiments.common import get_scale

        for scale in ("smoke", "small", "full"):
            s = get_scale(scale)
            assert s.mix_instructions > 0
            assert s.mix_chunk > 0
            assert s.mix_max_simpoints > 0

    def test_scorecard_rows_are_stable(self):
        """Two runs on one context agree row-for-row (and hit the caches)."""
        from repro.experiments.common import ExperimentContext
        from repro.experiments.mixes import run_mix_scorecard

        specs = [SYNTH_SPEC]
        with ExperimentContext("smoke") as context:
            first = run_mix_scorecard(context, specs=specs)
            jobs_after_first = context.engine.stats.jobs
            second = run_mix_scorecard(context, specs=specs)
        assert first.rows == second.rows
        assert context.engine.stats.jobs == jobs_after_first  # all cached
        (row,) = first.rows
        assert row["Mix"] == "synthmix"
        assert row["Instr"] == context.scale.mix_instructions
        assert row["LLC MPKI"] > 0
        assert 0.0 <= row["FPR"] <= 1.0 and 0.0 <= row["TPR"] <= 1.0
        assert first.summary.startswith("mixes=1 ")
