"""Tests for on-disk trace ingestion (repro.workloads.ingest)."""

from pathlib import Path

import numpy as np
import pytest

from repro.bugs.core_bugs import SerializeOpcode
from repro.detect.probe import (
    IngestedProbeSource,
    build_ingested_probes,
)
from repro.detect.dataset import MemorySimulationCache, SimulationCache
from repro.runtime import JobEngine, ResultStore, TraceRegistry, trace_digest
from repro.uarch import core_microarch, memory_microarch
from repro.workloads import TraceGenerator, build_program, workload
from repro.workloads.ingest import (
    TRACE_FORMATS,
    TraceIngestError,
    assign_blocks,
    densify_blocks,
    discover_traces,
    ingest_trace,
    main as ingest_main,
    read_champsim,
    read_gem5,
    read_k6,
    trace_format,
    write_champsim,
    write_gem5,
    write_k6,
)
from repro.workloads.isa import Opcode
from repro.workloads.memsynth import memsynth_trace

DATA_DIR = Path(__file__).resolve().parent / "data"

#: Content digests of the golden sample traces.  These are the identities
#: under which results are stored in every ResultStore, so they must be
#: stable across sessions, machines and re-ingestions; regenerate via
#: ``tests/data/make_samples.py`` ONLY on a deliberate format change.
GOLDEN_DIGESTS = {
    "403.gcc": "4e13d1f2ceaaff0ff158ddffdda06666",
    "458.sjeng": "e7b6b5b84b67848b5f59301548673009",
    "433.milc": "228405a845f8f3f429309c773fe9aa27",
    "kvstore": "48b7d469c3549b81c4c5f27714eb10ec",
}


@pytest.fixture(scope="module")
def synth_uops():
    program = build_program(workload("403.gcc"), seed=91)
    return TraceGenerator(program, seed=92).generate(2000)


class TestGoldenSamples:
    def test_discovery_finds_all_formats(self):
        traces = discover_traces(DATA_DIR)
        assert [t.name for t in traces] == [
            "403.gcc", "433.milc", "458.sjeng", "kvstore",
        ]
        assert {t.format.name for t in traces} == {"champsim", "gem5", "k6"}

    def test_format_filter(self):
        champsim = discover_traces(DATA_DIR, "champsim")
        assert [t.name for t in champsim] == ["403.gcc", "458.sjeng"]
        gem5 = discover_traces(DATA_DIR, "gem5")
        assert [t.name for t in gem5] == ["433.milc"]
        k6 = discover_traces(DATA_DIR, "k6")
        assert [t.name for t in k6] == ["kvstore"]

    def test_digests_are_pinned(self):
        """Ingested content digests are the store identity — must not drift."""
        for trace in discover_traces(DATA_DIR):
            assert trace.digest == GOLDEN_DIGESTS[trace.name], trace.name

    def test_lazy_parse_and_blocks(self):
        trace = discover_traces(DATA_DIR, "champsim")[0]
        assert trace._decoded is None  # nothing parsed at discovery time
        uops = trace.decoded.uops
        assert len(uops) > 9_000
        assert trace.num_blocks >= 1
        assert all(0 <= u.block_id < trace.num_blocks for u in uops)

    def test_registry_registration_uses_content_digest(self):
        trace = discover_traces(DATA_DIR, "gem5")[0]
        registry = TraceRegistry()
        trace_id = trace.register(registry)
        assert trace_id == trace.digest
        assert registry.traces[trace_id] is trace.decoded


class TestChampsimFormat:
    def test_reingest_is_digest_stable(self, tmp_path):
        first = read_champsim(DATA_DIR / "403.gcc.champsim.gz")
        for name in ("copy.champsim", "copy.champsim.gz", "copy.champsim.xz"):
            write_champsim(tmp_path / name, first)
            again = read_champsim(tmp_path / name)
            assert trace_digest(again) == trace_digest(first), name

    def test_mapping_covers_memory_and_branches(self):
        uops = read_champsim(DATA_DIR / "403.gcc.champsim.gz")
        opcodes = {u.opcode for u in uops}
        assert Opcode.LOAD in opcodes and Opcode.STORE in opcodes
        assert Opcode.BRANCH in opcodes
        for u in uops:
            if u.is_mem:
                assert u.address is not None
            if u.is_branch:
                assert u.taken is not None and u.target is not None
                assert u.dest is None
            if u.is_store:
                assert u.dest is None

    def test_static_opcode_assignment_is_per_pc(self):
        uops = read_champsim(DATA_DIR / "403.gcc.champsim.gz")
        opcode_by_pc = {}
        for u in uops:
            assert opcode_by_pc.setdefault(u.pc, u.opcode) is u.opcode

    def test_truncated_payload_raises(self, tmp_path):
        path = tmp_path / "cut.champsim"
        write_champsim(path, read_champsim(DATA_DIR / "403.gcc.champsim.gz")[:10])
        path.write_bytes(path.read_bytes()[:-7])
        with pytest.raises(TraceIngestError, match="truncated"):
            read_champsim(path)

    def test_corrupt_gzip_raises(self, tmp_path):
        source = (DATA_DIR / "403.gcc.champsim.gz").read_bytes()
        path = tmp_path / "bad.champsim.gz"
        path.write_bytes(source[: len(source) // 2])
        with pytest.raises(TraceIngestError, match="corrupt"):
            read_champsim(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.champsim"
        path.write_bytes(b"")
        with pytest.raises(TraceIngestError, match="empty"):
            read_champsim(path)


class TestGem5Format:
    def test_round_trip_is_full_fidelity(self, synth_uops, tmp_path):
        for name in ("t.gem5", "t.gem5.gz", "t.gem5.xz"):
            path = tmp_path / name
            write_gem5(path, synth_uops)
            again = read_gem5(path)
            assert again == synth_uops, name
            assert trace_digest(again) == trace_digest(synth_uops)

    def test_blocks_derived_when_absent(self, synth_uops, tmp_path):
        stripped = [
            type(u)(opcode=u.opcode, srcs=u.srcs, dest=u.dest, pc=u.pc,
                    address=u.address, taken=u.taken, target=u.target,
                    indirect=u.indirect, size=u.size, block_id=-1)
            for u in synth_uops
        ]
        path = tmp_path / "noblocks.gem5"
        write_gem5(path, stripped)
        again = read_gem5(path)
        assert all(u.block_id >= 0 for u in again)
        # Same leader pc -> same derived id, ids dense from zero.
        ids = {u.block_id for u in again}
        assert ids == set(range(len(ids)))

    def test_unknown_mnemonic_raises_with_line(self, tmp_path):
        path = tmp_path / "bad.gem5"
        path.write_text("0 0x400000 add D=1 S=2,3\n1 0x400004 frobnicate\n")
        with pytest.raises(TraceIngestError, match=r"bad\.gem5:2.*frobnicate"):
            read_gem5(path)

    def test_memory_op_requires_address(self, tmp_path):
        path = tmp_path / "bad.gem5"
        path.write_text("0 0x400000 load D=1 S=2\n")
        with pytest.raises(TraceIngestError, match="lacks an A= address"):
            read_gem5(path)

    def test_branch_requires_outcome(self, tmp_path):
        path = tmp_path / "bad.gem5"
        path.write_text("0 0x400000 branch S=2\n")
        with pytest.raises(TraceIngestError, match="lacks a TK= outcome"):
            read_gem5(path)

    def test_malformed_field_raises(self, tmp_path):
        path = tmp_path / "bad.gem5"
        path.write_text("0 0x400000 add D=1 WHAT=3\n")
        with pytest.raises(TraceIngestError, match="malformed field"):
            read_gem5(path)

    def test_mixed_block_annotations_rejected(self, tmp_path):
        """Mixed B= usage would silently drop B-less lines from every BBV."""
        path = tmp_path / "mixed.gem5"
        path.write_text("0 0x400000 add D=1 B=0\n1 0x400004 add D=2\n")
        with pytest.raises(TraceIngestError, match=r"mixed\.gem5:2.*lacks B="):
            read_gem5(path)

    def test_negative_block_id_rejected(self, tmp_path):
        """-1 is the internal 'unassigned' sentinel; a file must not inject it."""
        path = tmp_path / "neg.gem5"
        path.write_text("0 0x400000 add D=1 B=0\n1 0x400004 add D=2 B=-1\n")
        with pytest.raises(TraceIngestError, match=r"neg\.gem5:2.*negative.*B=-1"):
            read_gem5(path)

    def test_sparse_block_ids_densified(self, tmp_path):
        """Sparse user-supplied B= ids must not inflate the BBV dimension.

        Pre-fix, ``num_blocks = max(B)+1`` turned B=7/B=900 into a
        901-dimensional BBV of mostly dead axes; ids are now remapped densely
        in first-appearance order at read time.
        """
        path = tmp_path / "sparse.gem5"
        path.write_text(
            "0 0x400000 add D=1 B=7\n"
            "1 0x400004 add D=2 B=900\n"
            "2 0x400008 add D=3 B=7\n"
        )
        uops = read_gem5(path)
        assert [u.block_id for u in uops] == [0, 1, 0]
        assert ingest_trace(path, fmt="gem5").num_blocks == 2

    def test_dense_block_ids_kept_verbatim(self, tmp_path):
        """Already-dense ids pass through untouched (round-trip fidelity)."""
        path = tmp_path / "dense.gem5"
        path.write_text(
            "0 0x400000 add D=1 B=0\n"
            "1 0x400004 add D=2 B=1\n"
            "2 0x400008 add D=3 B=0\n"
        )
        assert [u.block_id for u in read_gem5(path)] == [0, 1, 0]

    def test_densify_blocks_helper(self, synth_uops):
        shifted = [
            type(u)(opcode=u.opcode, srcs=u.srcs, dest=u.dest, pc=u.pc,
                    address=u.address, taken=u.taken, target=u.target,
                    indirect=u.indirect, size=u.size,
                    block_id=3 * u.block_id + 5)
            for u in synth_uops[:500]
        ]
        count = densify_blocks(shifted)
        ids = [u.block_id for u in shifted]
        assert set(ids) == set(range(count))
        # First-appearance order: each new id is exactly the next integer.
        seen: list[int] = []
        for block_id in ids:
            if block_id not in seen:
                assert block_id == len(seen)
                seen.append(block_id)


class TestK6Format:
    def test_golden_round_trip_is_digest_stable(self, tmp_path):
        first = read_k6(DATA_DIR / "kvstore.k6.gz")
        for name in ("copy.k6", "copy.k6.gz", "copy.k6.xz"):
            write_k6(tmp_path / name, first)
            again = read_k6(tmp_path / name)
            assert again == first, name
            assert trace_digest(again) == trace_digest(first), name

    def test_writer_reader_fixpoint_from_memsynth(self, tmp_path):
        """write -> read -> write -> read converges after one lossy step."""
        uops = memsynth_trace("web-server", 4_000, seed=3)
        write_k6(tmp_path / "a.k6", uops)
        once = read_k6(tmp_path / "a.k6")
        write_k6(tmp_path / "b.k6", once)
        twice = read_k6(tmp_path / "b.k6")
        assert twice == once
        assert trace_digest(twice) == trace_digest(once)

    def test_mapping_is_memory_only_with_page_blocks(self):
        uops = read_k6(DATA_DIR / "kvstore.k6.gz")
        assert {u.opcode for u in uops} <= {Opcode.LOAD, Opcode.STORE}
        assert all(u.address is not None for u in uops)
        page_by_block = {}
        for u in uops:
            page = u.address >> 12
            assert page_by_block.setdefault(u.block_id, page) == page
        ids = {u.block_id for u in uops}
        assert ids == set(range(len(ids)))

    def test_unknown_command_raises_with_line(self, tmp_path):
        path = tmp_path / "bad.k6"
        path.write_text("0x1000 P_MEM_RD 0\n0x2000 P_FETCH 10\n")
        with pytest.raises(TraceIngestError, match=r"bad\.k6:2.*P_FETCH"):
            read_k6(path)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.k6"
        path.write_text("0x1000 P_MEM_RD\n")
        with pytest.raises(TraceIngestError, match=r"bad\.k6:1"):
            read_k6(path)

    def test_negative_cycle_raises(self, tmp_path):
        path = tmp_path / "bad.k6"
        path.write_text("0x1000 P_MEM_RD -5\n")
        with pytest.raises(TraceIngestError, match="negative"):
            read_k6(path)

    def test_backwards_cycle_raises(self, tmp_path):
        path = tmp_path / "bad.k6"
        path.write_text("0x1000 P_MEM_RD 20\n0x2000 P_MEM_WR 10\n")
        with pytest.raises(TraceIngestError, match=r"bad\.k6:2.*backwards"):
            read_k6(path)

    def test_corrupt_gzip_raises(self, tmp_path):
        source = (DATA_DIR / "kvstore.k6.gz").read_bytes()
        path = tmp_path / "bad.k6.gz"
        path.write_bytes(source[: len(source) // 2])
        with pytest.raises(TraceIngestError, match="corrupt"):
            read_k6(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.k6"
        path.write_bytes(b"")
        with pytest.raises(TraceIngestError, match="empty"):
            read_k6(path)

    def test_comment_only_file_raises(self, tmp_path):
        path = tmp_path / "comments.k6"
        path.write_text("# header only\n")
        with pytest.raises(TraceIngestError, match="no k6 records"):
            read_k6(path)

    def test_memory_study_serial_parallel_identity(self):
        """k6 probes through the memory engine: bit-identical at any --jobs."""
        probes = build_ingested_probes(
            DATA_DIR, trace_format="k6", interval_size=3_000,
            max_simpoints_per_trace=2,
        )
        assert probes and all(p.benchmark == "kvstore" for p in probes)
        design = memory_microarch("Skylake-mem")
        requests = [(p, design, None) for p in probes]

        serial = MemorySimulationCache(step_instructions=500)
        serial.warm(requests)
        parallel = MemorySimulationCache(
            step_instructions=500, engine=JobEngine(jobs=2, chunk_size=1)
        )
        parallel.warm(requests)
        for probe, config, bug in requests:
            a = serial.get(probe, config, bug)
            b = parallel.get(probe, config, bug)
            assert a.target_metric == b.target_metric
            for name in a.series.counters:
                assert np.array_equal(
                    a.series.counters[name], b.series.counters[name]
                ), name

    def test_memory_store_replay_executes_nothing(self, tmp_path):
        """Same k6 file -> same digest -> zero re-simulation from a store."""
        design = memory_microarch("Skylake-mem")
        store = ResultStore(tmp_path / "store")

        def run_once():
            probes = build_ingested_probes(
                DATA_DIR, trace_format="k6", interval_size=3_000,
                max_simpoints_per_trace=1,
            )
            cache = MemorySimulationCache(
                step_instructions=500, engine=JobEngine(jobs=1, store=store)
            )
            cache.warm((p, design, None) for p in probes)
            return cache.engine.stats

        first = run_once()
        assert first.executed == 1 and first.store_hits == 0
        second = run_once()
        assert second.executed == 0 and second.store_hits == 1


class TestDiscoveryErrors:
    def test_unknown_format_name(self):
        with pytest.raises(TraceIngestError, match="unknown trace format"):
            trace_format("gem6")

    def test_missing_directory(self, tmp_path):
        with pytest.raises(TraceIngestError, match="does not exist"):
            discover_traces(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(TraceIngestError, match="no champsim/gem5/k6 traces"):
            discover_traces(tmp_path)

    def test_suffix_detection(self, tmp_path):
        assert ingest_trace(DATA_DIR / "403.gcc.champsim.gz").format.name == "champsim"
        assert ingest_trace(DATA_DIR / "433.milc.gem5.gz").format.name == "gem5"
        assert ingest_trace(DATA_DIR / "kvstore.k6.gz").format.name == "k6"
        with pytest.raises(TraceIngestError, match="cannot detect trace format"):
            ingest_trace(tmp_path / "mystery.bin")

    def test_duplicate_trace_names_rejected(self, tmp_path, synth_uops):
        """Two files sharing a stem would silently shadow one another."""
        write_champsim(tmp_path / "dup.champsim.gz", synth_uops)
        write_gem5(tmp_path / "dup.gem5", synth_uops)
        with pytest.raises(TraceIngestError, match="duplicate trace names") as exc:
            discover_traces(tmp_path)
        assert "dup.champsim.gz" in str(exc.value)
        assert "dup.gem5" in str(exc.value)

    def test_distinct_names_still_discovered(self, tmp_path, synth_uops):
        write_champsim(tmp_path / "one.champsim.gz", synth_uops)
        write_gem5(tmp_path / "two.gem5", synth_uops)
        assert [t.name for t in discover_traces(tmp_path)] == ["one", "two"]

    def test_format_override_beats_suffix(self, synth_uops, tmp_path):
        path = tmp_path / "odd-name.gem5"
        write_gem5(path, synth_uops)
        assert ingest_trace(path, fmt="gem5").format.name == "gem5"


class TestBlockAssignment:
    def test_blocks_split_at_branches(self, synth_uops):
        uops = [
            type(u)(opcode=u.opcode, srcs=u.srcs, dest=u.dest, pc=u.pc,
                    address=u.address, taken=u.taken, target=u.target)
            for u in synth_uops[:200]
        ]
        count = assign_blocks(uops)
        assert count >= 1
        for prev, cur in zip(uops, uops[1:]):
            if not prev.is_branch:
                assert cur.block_id == prev.block_id


class TestIngestedProbes:
    def test_probe_extraction_shapes(self):
        probes = build_ingested_probes(
            DATA_DIR, interval_size=3_000, max_simpoints_per_trace=3, seed=0
        )
        benchmarks = {p.benchmark for p in probes}
        assert benchmarks == {"403.gcc", "458.sjeng", "433.milc", "kvstore"}
        for benchmark in benchmarks:
            weights = [p.weight for p in probes if p.benchmark == benchmark]
            assert weights and abs(sum(weights) - 1.0) < 1e-9
        assert all(len(p.trace) == 3_000 for p in probes)
        assert all("/" in p.name for p in probes)

    def test_probe_source_wrapper(self):
        source = IngestedProbeSource(
            trace_dir=str(DATA_DIR), trace_format="champsim",
            interval_size=3_000, max_simpoints_per_trace=2, seed=1,
        )
        probes = source.build()
        assert {p.benchmark for p in probes} == {"403.gcc", "458.sjeng"}

    def test_interval_clamped_to_trace_length(self):
        probes = build_ingested_probes(
            DATA_DIR, trace_format="gem5", interval_size=1_000_000,
            max_simpoints_per_trace=3,
        )
        assert len(probes) == 1  # whole trace collapses to one interval
        assert len(probes[0].trace) > 9_000

    def test_serial_and_parallel_counters_identical(self):
        """Ingested probes through the engine: bit-identical at any --jobs."""
        probes = build_ingested_probes(
            DATA_DIR, trace_format="champsim", interval_size=3_000,
            max_simpoints_per_trace=1,
        )
        design = core_microarch("Skylake")
        bugs = [None, SerializeOpcode(Opcode.XOR)]
        requests = [(p, design, b) for p in probes for b in bugs]

        serial = SimulationCache(step_cycles=256)
        serial.warm(requests)
        parallel = SimulationCache(
            step_cycles=256, engine=JobEngine(jobs=2, chunk_size=1)
        )
        parallel.warm(requests)
        for probe, config, bug in requests:
            a = serial.get(probe, config, bug)
            b = parallel.get(probe, config, bug)
            assert a.ipc == b.ipc
            assert np.array_equal(a.series.ipc, b.series.ipc)
            for name in a.series.counters:
                assert np.array_equal(
                    a.series.counters[name], b.series.counters[name]
                ), name

    def test_store_reuse_across_sessions(self, tmp_path):
        """Same trace file -> same digest -> zero re-simulation from a store."""
        design = core_microarch("Skylake")
        store = ResultStore(tmp_path / "store")

        def run_once():
            probes = build_ingested_probes(
                DATA_DIR, trace_format="champsim", interval_size=3_000,
                max_simpoints_per_trace=1,
            )
            cache = SimulationCache(
                step_cycles=256, engine=JobEngine(jobs=1, store=store)
            )
            cache.warm((p, design, None) for p in probes)
            return cache.engine.stats

        first = run_once()
        assert first.executed == 2 and first.store_hits == 0
        second = run_once()  # fresh ingestion, fresh cache, same store
        assert second.executed == 0 and second.store_hits == 2

    def test_fig3_falls_back_when_403_gcc_absent(self):
        """Experiments pinned to the paper's running example must still run
        on trace directories that do not contain a 403.gcc trace."""
        from repro.experiments import fig3_simpoint_ipc
        from repro.experiments.common import ExperimentContext

        with ExperimentContext(
            "smoke", trace_dir=str(DATA_DIR), trace_format="gem5"
        ) as context:
            result = fig3_simpoint_ipc.run(context=context)
        assert any("433.milc" in str(row["SimPoint"]) for row in result.rows)

    def test_memory_study_on_ingested_probe(self):
        probes = build_ingested_probes(
            DATA_DIR, trace_format="gem5", interval_size=3_000,
            max_simpoints_per_trace=1,
        )
        cache = MemorySimulationCache(step_instructions=500, target_metric="amat")
        observation = cache.get(probes[0], memory_microarch("Skylake-mem"))
        assert observation.target_metric > 1.0


class TestIngestCli:
    def test_lists_traces_and_probes(self, capsys):
        assert ingest_main([str(DATA_DIR), "--format", "champsim", "--probes",
                            "--max-simpoints", "2"]) == 0
        out = capsys.readouterr().out
        assert "403.gcc" in out and "format=champsim" in out
        assert GOLDEN_DIGESTS["403.gcc"] in out
        assert "probe 403.gcc/sp01" in out
        assert "433.milc" not in out

    def test_k6_listing(self, capsys):
        assert ingest_main([str(DATA_DIR), "--format", "k6"]) == 0
        out = capsys.readouterr().out
        assert "kvstore" in out and "format=k6" in out
        assert GOLDEN_DIGESTS["kvstore"] in out
