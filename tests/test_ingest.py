"""Tests for on-disk trace ingestion (repro.workloads.ingest)."""

from pathlib import Path

import numpy as np
import pytest

from repro.bugs.core_bugs import SerializeOpcode
from repro.detect.probe import (
    IngestedProbeSource,
    build_ingested_probes,
)
from repro.detect.dataset import MemorySimulationCache, SimulationCache
from repro.runtime import JobEngine, ResultStore, TraceRegistry, trace_digest
from repro.uarch import core_microarch, memory_microarch
from repro.workloads import TraceGenerator, build_program, workload
from repro.workloads.ingest import (
    TRACE_FORMATS,
    TraceIngestError,
    assign_blocks,
    discover_traces,
    ingest_trace,
    main as ingest_main,
    read_champsim,
    read_gem5,
    trace_format,
    write_champsim,
    write_gem5,
)
from repro.workloads.isa import Opcode

DATA_DIR = Path(__file__).resolve().parent / "data"

#: Content digests of the golden sample traces.  These are the identities
#: under which results are stored in every ResultStore, so they must be
#: stable across sessions, machines and re-ingestions; regenerate via
#: ``tests/data/make_samples.py`` ONLY on a deliberate format change.
GOLDEN_DIGESTS = {
    "403.gcc": "4e13d1f2ceaaff0ff158ddffdda06666",
    "458.sjeng": "e7b6b5b84b67848b5f59301548673009",
    "433.milc": "228405a845f8f3f429309c773fe9aa27",
}


@pytest.fixture(scope="module")
def synth_uops():
    program = build_program(workload("403.gcc"), seed=91)
    return TraceGenerator(program, seed=92).generate(2000)


class TestGoldenSamples:
    def test_discovery_finds_all_formats(self):
        traces = discover_traces(DATA_DIR)
        assert [t.name for t in traces] == ["403.gcc", "433.milc", "458.sjeng"]
        assert {t.format.name for t in traces} == {"champsim", "gem5"}

    def test_format_filter(self):
        champsim = discover_traces(DATA_DIR, "champsim")
        assert [t.name for t in champsim] == ["403.gcc", "458.sjeng"]
        gem5 = discover_traces(DATA_DIR, "gem5")
        assert [t.name for t in gem5] == ["433.milc"]

    def test_digests_are_pinned(self):
        """Ingested content digests are the store identity — must not drift."""
        for trace in discover_traces(DATA_DIR):
            assert trace.digest == GOLDEN_DIGESTS[trace.name], trace.name

    def test_lazy_parse_and_blocks(self):
        trace = discover_traces(DATA_DIR, "champsim")[0]
        assert trace._decoded is None  # nothing parsed at discovery time
        uops = trace.decoded.uops
        assert len(uops) > 9_000
        assert trace.num_blocks >= 1
        assert all(0 <= u.block_id < trace.num_blocks for u in uops)

    def test_registry_registration_uses_content_digest(self):
        trace = discover_traces(DATA_DIR, "gem5")[0]
        registry = TraceRegistry()
        trace_id = trace.register(registry)
        assert trace_id == trace.digest
        assert registry.traces[trace_id] is trace.decoded


class TestChampsimFormat:
    def test_reingest_is_digest_stable(self, tmp_path):
        first = read_champsim(DATA_DIR / "403.gcc.champsim.gz")
        for name in ("copy.champsim", "copy.champsim.gz", "copy.champsim.xz"):
            write_champsim(tmp_path / name, first)
            again = read_champsim(tmp_path / name)
            assert trace_digest(again) == trace_digest(first), name

    def test_mapping_covers_memory_and_branches(self):
        uops = read_champsim(DATA_DIR / "403.gcc.champsim.gz")
        opcodes = {u.opcode for u in uops}
        assert Opcode.LOAD in opcodes and Opcode.STORE in opcodes
        assert Opcode.BRANCH in opcodes
        for u in uops:
            if u.is_mem:
                assert u.address is not None
            if u.is_branch:
                assert u.taken is not None and u.target is not None
                assert u.dest is None
            if u.is_store:
                assert u.dest is None

    def test_static_opcode_assignment_is_per_pc(self):
        uops = read_champsim(DATA_DIR / "403.gcc.champsim.gz")
        opcode_by_pc = {}
        for u in uops:
            assert opcode_by_pc.setdefault(u.pc, u.opcode) is u.opcode

    def test_truncated_payload_raises(self, tmp_path):
        path = tmp_path / "cut.champsim"
        write_champsim(path, read_champsim(DATA_DIR / "403.gcc.champsim.gz")[:10])
        path.write_bytes(path.read_bytes()[:-7])
        with pytest.raises(TraceIngestError, match="truncated"):
            read_champsim(path)

    def test_corrupt_gzip_raises(self, tmp_path):
        source = (DATA_DIR / "403.gcc.champsim.gz").read_bytes()
        path = tmp_path / "bad.champsim.gz"
        path.write_bytes(source[: len(source) // 2])
        with pytest.raises(TraceIngestError, match="corrupt"):
            read_champsim(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.champsim"
        path.write_bytes(b"")
        with pytest.raises(TraceIngestError, match="empty"):
            read_champsim(path)


class TestGem5Format:
    def test_round_trip_is_full_fidelity(self, synth_uops, tmp_path):
        for name in ("t.gem5", "t.gem5.gz", "t.gem5.xz"):
            path = tmp_path / name
            write_gem5(path, synth_uops)
            again = read_gem5(path)
            assert again == synth_uops, name
            assert trace_digest(again) == trace_digest(synth_uops)

    def test_blocks_derived_when_absent(self, synth_uops, tmp_path):
        stripped = [
            type(u)(opcode=u.opcode, srcs=u.srcs, dest=u.dest, pc=u.pc,
                    address=u.address, taken=u.taken, target=u.target,
                    indirect=u.indirect, size=u.size, block_id=-1)
            for u in synth_uops
        ]
        path = tmp_path / "noblocks.gem5"
        write_gem5(path, stripped)
        again = read_gem5(path)
        assert all(u.block_id >= 0 for u in again)
        # Same leader pc -> same derived id, ids dense from zero.
        ids = {u.block_id for u in again}
        assert ids == set(range(len(ids)))

    def test_unknown_mnemonic_raises_with_line(self, tmp_path):
        path = tmp_path / "bad.gem5"
        path.write_text("0 0x400000 add D=1 S=2,3\n1 0x400004 frobnicate\n")
        with pytest.raises(TraceIngestError, match=r"bad\.gem5:2.*frobnicate"):
            read_gem5(path)

    def test_memory_op_requires_address(self, tmp_path):
        path = tmp_path / "bad.gem5"
        path.write_text("0 0x400000 load D=1 S=2\n")
        with pytest.raises(TraceIngestError, match="lacks an A= address"):
            read_gem5(path)

    def test_branch_requires_outcome(self, tmp_path):
        path = tmp_path / "bad.gem5"
        path.write_text("0 0x400000 branch S=2\n")
        with pytest.raises(TraceIngestError, match="lacks a TK= outcome"):
            read_gem5(path)

    def test_malformed_field_raises(self, tmp_path):
        path = tmp_path / "bad.gem5"
        path.write_text("0 0x400000 add D=1 WHAT=3\n")
        with pytest.raises(TraceIngestError, match="malformed field"):
            read_gem5(path)

    def test_mixed_block_annotations_rejected(self, tmp_path):
        """Mixed B= usage would silently drop B-less lines from every BBV."""
        path = tmp_path / "mixed.gem5"
        path.write_text("0 0x400000 add D=1 B=0\n1 0x400004 add D=2\n")
        with pytest.raises(TraceIngestError, match=r"mixed\.gem5:2.*lacks B="):
            read_gem5(path)


class TestDiscoveryErrors:
    def test_unknown_format_name(self):
        with pytest.raises(TraceIngestError, match="unknown trace format"):
            trace_format("gem6")

    def test_missing_directory(self, tmp_path):
        with pytest.raises(TraceIngestError, match="does not exist"):
            discover_traces(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(TraceIngestError, match="no champsim/gem5 traces"):
            discover_traces(tmp_path)

    def test_suffix_detection(self, tmp_path):
        assert ingest_trace(DATA_DIR / "403.gcc.champsim.gz").format.name == "champsim"
        assert ingest_trace(DATA_DIR / "433.milc.gem5.gz").format.name == "gem5"
        with pytest.raises(TraceIngestError, match="cannot detect trace format"):
            ingest_trace(tmp_path / "mystery.bin")

    def test_format_override_beats_suffix(self, synth_uops, tmp_path):
        path = tmp_path / "odd-name.gem5"
        write_gem5(path, synth_uops)
        assert ingest_trace(path, fmt="gem5").format.name == "gem5"


class TestBlockAssignment:
    def test_blocks_split_at_branches(self, synth_uops):
        uops = [
            type(u)(opcode=u.opcode, srcs=u.srcs, dest=u.dest, pc=u.pc,
                    address=u.address, taken=u.taken, target=u.target)
            for u in synth_uops[:200]
        ]
        count = assign_blocks(uops)
        assert count >= 1
        for prev, cur in zip(uops, uops[1:]):
            if not prev.is_branch:
                assert cur.block_id == prev.block_id


class TestIngestedProbes:
    def test_probe_extraction_shapes(self):
        probes = build_ingested_probes(
            DATA_DIR, interval_size=3_000, max_simpoints_per_trace=3, seed=0
        )
        benchmarks = {p.benchmark for p in probes}
        assert benchmarks == {"403.gcc", "458.sjeng", "433.milc"}
        for benchmark in benchmarks:
            weights = [p.weight for p in probes if p.benchmark == benchmark]
            assert weights and abs(sum(weights) - 1.0) < 1e-9
        assert all(len(p.trace) == 3_000 for p in probes)
        assert all("/" in p.name for p in probes)

    def test_probe_source_wrapper(self):
        source = IngestedProbeSource(
            trace_dir=str(DATA_DIR), trace_format="champsim",
            interval_size=3_000, max_simpoints_per_trace=2, seed=1,
        )
        probes = source.build()
        assert {p.benchmark for p in probes} == {"403.gcc", "458.sjeng"}

    def test_interval_clamped_to_trace_length(self):
        probes = build_ingested_probes(
            DATA_DIR, trace_format="gem5", interval_size=1_000_000,
            max_simpoints_per_trace=3,
        )
        assert len(probes) == 1  # whole trace collapses to one interval
        assert len(probes[0].trace) > 9_000

    def test_serial_and_parallel_counters_identical(self):
        """Ingested probes through the engine: bit-identical at any --jobs."""
        probes = build_ingested_probes(
            DATA_DIR, trace_format="champsim", interval_size=3_000,
            max_simpoints_per_trace=1,
        )
        design = core_microarch("Skylake")
        bugs = [None, SerializeOpcode(Opcode.XOR)]
        requests = [(p, design, b) for p in probes for b in bugs]

        serial = SimulationCache(step_cycles=256)
        serial.warm(requests)
        parallel = SimulationCache(
            step_cycles=256, engine=JobEngine(jobs=2, chunk_size=1)
        )
        parallel.warm(requests)
        for probe, config, bug in requests:
            a = serial.get(probe, config, bug)
            b = parallel.get(probe, config, bug)
            assert a.ipc == b.ipc
            assert np.array_equal(a.series.ipc, b.series.ipc)
            for name in a.series.counters:
                assert np.array_equal(
                    a.series.counters[name], b.series.counters[name]
                ), name

    def test_store_reuse_across_sessions(self, tmp_path):
        """Same trace file -> same digest -> zero re-simulation from a store."""
        design = core_microarch("Skylake")
        store = ResultStore(tmp_path / "store")

        def run_once():
            probes = build_ingested_probes(
                DATA_DIR, trace_format="champsim", interval_size=3_000,
                max_simpoints_per_trace=1,
            )
            cache = SimulationCache(
                step_cycles=256, engine=JobEngine(jobs=1, store=store)
            )
            cache.warm((p, design, None) for p in probes)
            return cache.engine.stats

        first = run_once()
        assert first.executed == 2 and first.store_hits == 0
        second = run_once()  # fresh ingestion, fresh cache, same store
        assert second.executed == 0 and second.store_hits == 2

    def test_fig3_falls_back_when_403_gcc_absent(self):
        """Experiments pinned to the paper's running example must still run
        on trace directories that do not contain a 403.gcc trace."""
        from repro.experiments import fig3_simpoint_ipc
        from repro.experiments.common import ExperimentContext

        with ExperimentContext(
            "smoke", trace_dir=str(DATA_DIR), trace_format="gem5"
        ) as context:
            result = fig3_simpoint_ipc.run(context=context)
        assert any("433.milc" in str(row["SimPoint"]) for row in result.rows)

    def test_memory_study_on_ingested_probe(self):
        probes = build_ingested_probes(
            DATA_DIR, trace_format="gem5", interval_size=3_000,
            max_simpoints_per_trace=1,
        )
        cache = MemorySimulationCache(step_instructions=500, target_metric="amat")
        observation = cache.get(probes[0], memory_microarch("Skylake-mem"))
        assert observation.target_metric > 1.0


class TestIngestCli:
    def test_lists_traces_and_probes(self, capsys):
        assert ingest_main([str(DATA_DIR), "--format", "champsim", "--probes",
                            "--max-simpoints", "2"]) == 0
        out = capsys.readouterr().out
        assert "403.gcc" in out and "format=champsim" in out
        assert GOLDEN_DIGESTS["403.gcc"] in out
        assert "probe 403.gcc/sp01" in out
        assert "433.milc" not in out
