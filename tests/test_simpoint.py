"""Tests for BBV profiling, k-means clustering and SimPoint selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simpoint import (
    SimPointSelection,
    basic_block_vector,
    bbv_matrix,
    bic_score,
    choose_k,
    kmeans,
    project_bbvs,
    select_simpoints,
    weighted_average,
)
from repro.workloads import TraceGenerator, build_program, workload


class TestBBV:
    def test_bbv_counts_and_normalisation(self, gcc_program, gcc_trace):
        vector = basic_block_vector(gcc_trace[:500], gcc_program.num_blocks)
        assert vector.shape == (gcc_program.num_blocks,)
        assert abs(vector.sum() - 1.0) < 1e-9
        raw = basic_block_vector(gcc_trace[:500], gcc_program.num_blocks, normalize=False)
        assert raw.sum() == 500

    def test_bbv_matrix_shape(self, gcc_program, gcc_trace):
        intervals = [gcc_trace[i:i + 300] for i in range(0, 1500, 300)]
        matrix = bbv_matrix(intervals, gcc_program.num_blocks)
        assert matrix.shape == (5, gcc_program.num_blocks)

    def test_bbv_rejects_bad_inputs(self, gcc_trace):
        with pytest.raises(ValueError):
            basic_block_vector(gcc_trace[:10], 0)
        with pytest.raises(ValueError):
            bbv_matrix([], 4)

    def test_projection_reduces_dimensionality(self):
        rng = np.random.default_rng(0)
        matrix = rng.random((20, 40))
        projected = project_bbvs(matrix, dims=5, seed=1)
        assert projected.shape == (20, 5)
        # Already-small matrices pass through unchanged.
        small = rng.random((20, 3))
        assert np.array_equal(project_bbvs(small, dims=5), small)


class TestKMeans:
    def test_kmeans_separates_obvious_clusters(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0.0, 0.05, size=(30, 2))
        b = rng.normal(5.0, 0.05, size=(30, 2))
        result = kmeans(np.vstack([a, b]), k=2, seed=0)
        labels_a = set(result.labels[:30])
        labels_b = set(result.labels[30:])
        assert labels_a.isdisjoint(labels_b)
        assert result.inertia < 5.0

    def test_kmeans_validates_k(self):
        data = np.zeros((5, 2))
        with pytest.raises(ValueError):
            kmeans(data, k=0)
        with pytest.raises(ValueError):
            kmeans(data, k=6)

    def test_choose_k_picks_reasonable_k(self):
        rng = np.random.default_rng(2)
        clusters = [rng.normal(c * 10, 0.1, size=(25, 3)) for c in range(3)]
        result = choose_k(np.vstack(clusters), max_k=6, seed=0)
        assert 2 <= result.k <= 4

    def test_bic_prefers_better_fit(self):
        rng = np.random.default_rng(3)
        data = np.vstack([rng.normal(0, 0.1, (30, 2)), rng.normal(8, 0.1, (30, 2))])
        one = kmeans(data, 1, seed=0)
        two = kmeans(data, 2, seed=0)
        assert bic_score(data, two) > bic_score(data, one)

    @settings(max_examples=15, deadline=None)
    @given(k=st.integers(min_value=1, max_value=5), seed=st.integers(0, 100))
    def test_kmeans_labels_within_range(self, k, seed):
        rng = np.random.default_rng(seed)
        data = rng.random((24, 4))
        result = kmeans(data, k=k, seed=seed)
        assert result.labels.shape == (24,)
        assert set(result.labels) <= set(range(k))
        assert result.centroids.shape == (k, 4)


class TestSimPointSelection:
    @pytest.fixture(scope="class")
    def selection(self) -> SimPointSelection:
        program = build_program(workload("458.sjeng"), seed=2)
        return select_simpoints(program, total_instructions=12000, interval_size=2000,
                                max_simpoints=5, seed=2)

    def test_weights_sum_to_one(self, selection):
        assert abs(selection.total_weight() - 1.0) < 1e-9

    def test_simpoints_have_traces(self, selection):
        assert len(selection) >= 1
        for sp in selection:
            assert len(sp.trace) > 0
            assert sp.name.startswith("458.sjeng/sp")

    def test_weighted_average_requires_all_values(self, selection):
        values = {sp.name: 1.0 for sp in selection}
        assert weighted_average(values, selection) == pytest.approx(1.0)
        values.popitem()
        with pytest.raises(KeyError):
            weighted_average(values, selection)

    def test_too_short_trace_rejected(self):
        program = build_program(workload("403.gcc"), seed=0)
        with pytest.raises(ValueError):
            select_simpoints(program, total_instructions=10, interval_size=100000)
