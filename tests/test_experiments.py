"""Tests for the experiments harness (scales, context, rendering, runner)."""

import pytest

from repro.experiments import (
    SCALES,
    ExperimentContext,
    ExperimentResult,
    get_scale,
    render_table,
)
from repro.experiments.runner import EXPERIMENTS, run_all


class TestScales:
    def test_three_scales_defined(self):
        assert set(SCALES) == {"smoke", "small", "full"}
        assert get_scale("smoke").name == "smoke"
        assert get_scale(SCALES["full"]) is SCALES["full"]
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_full_scale_covers_paper_configuration(self):
        full = get_scale("full")
        assert len(full.benchmarks) == 10
        assert full.bug_types is None
        assert "GBT-250" in full.engines


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table([{"a": 1, "b": 0.5}, {"a": 20, "c": "x"}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_empty_rows(self):
        assert render_table([]) == "(no rows)"

    def test_result_to_text(self):
        result = ExperimentResult("x", "Title", [{"v": 1}], notes="note")
        text = result.to_text()
        assert "Title" in text and "note" in text


class TestContext:
    def test_design_sets(self):
        context = ExperimentContext("smoke")
        sets = context.core_designs()
        assert set(sets) == {"I", "II", "III", "IV"}
        assert all(sets.values())
        mem_sets = context.memory_designs()
        assert len(mem_sets["IV"]) == 2

    def test_bug_suites_respect_scale(self):
        context = ExperimentContext("smoke")
        suite = context.core_bugs()
        assert set(suite) == set(context.scale.bug_types)
        assert all(len(v) == 1 for v in suite.values())

    def test_detection_setup_composition(self):
        context = ExperimentContext("smoke")
        setup = context.detection_setup(engine="Lasso")
        assert setup.model_config.engine == "Lasso"
        assert setup.cache is context.cache
        assert len(setup.probes) == 0 or setup.probes[0] is not context.probes[0]

    def test_runtime_wiring(self, tmp_path):
        context = ExperimentContext("smoke", jobs=3, store_path=str(tmp_path / "s"))
        assert context.engine.jobs == 3
        assert context.engine.store is context.store
        assert context.cache.engine is context.engine
        assert context.memory_cache.engine is context.engine
        # The ad-hoc IPC-target memory cache shares the same engine/store.
        setup = context.memory_detection_setup(engine="Lasso", target_metric="ipc")
        assert setup.cache.engine is context.engine

    def test_jobs_default_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert ExperimentContext("smoke").jobs == 5
        monkeypatch.delenv("REPRO_JOBS")
        context = ExperimentContext("smoke")
        assert context.jobs == 1
        assert context.store is None


class TestRunner:
    def test_experiment_registry_complete(self):
        expected = {"fig1", "fig3", "fig4", "tab4", "fig5", "fig6", "tab5", "fig8",
                    "fig9", "fig10", "fig11", "tab6", "fig12", "fig13", "tab7",
                    "mixes"}
        assert set(EXPERIMENTS) == expected

    def test_opt_in_experiments_excluded_by_default(self):
        from repro.experiments.runner import OPT_IN

        assert OPT_IN == {"mixes"}
        default = [e for e in EXPERIMENTS if e not in OPT_IN]
        assert "mixes" not in default and len(default) == len(EXPERIMENTS) - 1

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_all("smoke", only=["tab99"])
