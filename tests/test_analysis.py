"""Tests for ``repro-lint`` (the ``repro.analysis`` static checker).

Layout mirrors the rule families: for every rule there is at least one
fixture proving it **fires** and one proving a pragma or allowlist entry
**suppresses** it.  The counter-contract section additionally mutates a
counter name in each of the four kernel lanes (via the in-memory overlay —
the repository on disk is never touched) and asserts the checker pins the
exact mutated name.  Finally, the linter must exit 0 on the real repository.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import counter_contract, determinism, hook_contract
from repro.analysis import native_gate, protocol_constants
from repro.analysis.cli import FAMILIES, main, run_lint
from repro.analysis.findings import (
    Allowlist,
    Finding,
    apply_suppressions,
    scan_pragmas,
)
from repro.analysis.tree import SourceTree

REPO_ROOT = Path(__file__).resolve().parent.parent


def tree_with(overlay=None):
    return SourceTree(REPO_ROOT, overlay)


def det_findings(source, path="src/repro/synthetic_fixture.py"):
    """Determinism findings for a synthetic one-file module."""
    tree = tree_with({path: source})
    return determinism.check_file(path, tree.parse(path))


def rules_of(findings):
    return {finding.rule for finding in findings}


# ---------------------------------------------------------------------------
# determinism: global-rng
# ---------------------------------------------------------------------------


class TestGlobalRng:
    def test_fires_on_module_random(self):
        found = det_findings("import random\nx = random.randint(0, 7)\n")
        assert rules_of(found) == {"global-rng"}
        assert "random.randint" in found[0].message

    def test_fires_on_numpy_global(self):
        found = det_findings("import numpy as np\nx = np.random.rand(3)\n")
        assert rules_of(found) == {"global-rng"}

    def test_seeded_generators_ok(self):
        found = det_findings(
            "import random\nimport numpy as np\n"
            "rng = random.Random(7)\ngen = np.random.default_rng(7)\n"
        )
        assert found == []

    def test_pragma_suppresses(self):
        path = "src/repro/synthetic_fixture.py"
        source = (
            "import random\n"
            "x = random.random()  # repro: allow(global-rng): test fixture\n"
        )
        tree = tree_with({path: source})
        findings = determinism.check_file(path, tree.parse(path))
        apply_suppressions(findings, {path: scan_pragmas(source)}, Allowlist())
        assert len(findings) == 1 and findings[0].suppressed
        assert findings[0].suppression.startswith("pragma:")

    def test_pragma_without_reason_does_not_suppress(self):
        path = "src/repro/synthetic_fixture.py"
        source = "import random\nx = random.random()  # repro: allow(global-rng)\n"
        findings = det_findings(source, path)
        pragmas = scan_pragmas(source)
        apply_suppressions(findings, {path: pragmas}, Allowlist())
        assert not findings[0].suppressed
        assert pragmas.malformed == [2]


# ---------------------------------------------------------------------------
# determinism: wall-clock
# ---------------------------------------------------------------------------


class TestWallClock:
    def test_fires(self):
        found = det_findings("import time\nstamp = time.time()\n")
        assert rules_of(found) == {"wall-clock"}

    def test_fires_on_datetime(self):
        found = det_findings(
            "import datetime\nnow = datetime.datetime.now()\n"
        )
        assert rules_of(found) == {"wall-clock"}

    def test_allowlist_suppresses_whole_file(self, tmp_path):
        path = "src/repro/synthetic_fixture.py"
        findings = det_findings("import time\nstamp = time.time()\n", path)
        allow = tmp_path / ".repro-lint-allow"
        allow.write_text(f"wall-clock {path} fixture timing code\n")
        apply_suppressions(findings, {}, Allowlist.load(allow))
        assert findings[0].suppressed
        assert findings[0].suppression.startswith("allowlist:")

    def test_allowlist_line_pin_is_line_specific(self, tmp_path):
        path = "src/repro/synthetic_fixture.py"
        findings = det_findings(
            "import time\na = time.time()\nb = time.time()\n", path
        )
        allow = tmp_path / ".repro-lint-allow"
        allow.write_text(f"wall-clock {path}:2 only the first read\n")
        apply_suppressions(findings, {}, Allowlist.load(allow))
        by_line = {finding.line: finding.suppressed for finding in findings}
        assert by_line == {2: True, 3: False}

    def test_malformed_allowlist_entry_reported(self, tmp_path):
        allow = tmp_path / ".repro-lint-allow"
        allow.write_text("wall-clock onlytwofields\n")
        loaded = Allowlist.load(allow)
        assert loaded.malformed and loaded.malformed[0][0] == 1


# ---------------------------------------------------------------------------
# determinism: id-hash
# ---------------------------------------------------------------------------


class TestIdHash:
    def test_fires_on_set_of_ids(self):
        found = det_findings("seen = set(id(x) for x in [1, 2])\n")
        assert "id-hash" in rules_of(found)

    def test_fires_on_dict_key(self):
        found = det_findings("table = {id(obj): 1 for obj in [object()]}\n")
        assert "id-hash" in rules_of(found)

    def test_plain_id_ok(self):
        # id() alone (e.g. logged) does not key anything.
        assert det_findings("marker = id(object())\n") == []


# ---------------------------------------------------------------------------
# determinism: set-order
# ---------------------------------------------------------------------------


class TestSetOrder:
    def test_fires_on_for_loop(self):
        found = det_findings("for item in {3, 1, 2}:\n    print(item)\n")
        assert rules_of(found) == {"set-order"}

    def test_fires_on_list_of_set(self):
        found = det_findings("items = list({3, 1, 2})\n")
        assert rules_of(found) == {"set-order"}

    def test_fires_on_join(self):
        found = det_findings("text = ','.join({'b', 'a'})\n")
        assert rules_of(found) == {"set-order"}

    def test_sorted_is_ok(self):
        assert det_findings("items = sorted({3, 1, 2})\n") == []

    def test_membership_is_ok(self):
        assert det_findings("ok = 3 in {3, 1, 2}\n") == []


# ---------------------------------------------------------------------------
# counter-contract
# ---------------------------------------------------------------------------


def counter_findings(overlay=None):
    return counter_contract.check(tree_with(overlay))


def _mutate(path, old, new):
    text = (REPO_ROOT / path).read_text(encoding="utf-8")
    assert old in text, f"{old!r} not found in {path}"
    return {path: text.replace(old, new)}


class TestCounterContract:
    def test_clean_on_repository(self):
        assert counter_findings() == []

    def test_reference_universe_is_complete(self):
        tree = tree_with()
        ops = counter_contract.opclass_members(tree)
        names = counter_contract.extract_lane_names(
            tree, (counter_contract.REFERENCE_PATH,), ops
        )
        assert "commit.instructions" in names
        assert "cache.l1d.misses" in names
        assert f"issue.class.{ops[0]}" in names
        assert len(names) == 55

    @pytest.mark.parametrize(
        "path,lane",
        [
            ("src/repro/coresim/pipeline.py", "scalar"),
            ("src/repro/coresim/vector.py", "vector"),
            ("src/repro/coresim/native/kernel.py", "native"),
        ],
    )
    def test_mutated_name_is_pinned_per_lane(self, path, lane):
        # Mutate one counter name in exactly one lane: the checker must name
        # both the missing original and the unknown replacement, in that lane.
        overlay = _mutate(path, '"commit.idle_cycles"', '"commit.idle_cyclez"')
        findings = counter_findings(overlay)
        messages = [f.message for f in findings if f.rule == "counter-contract"]
        assert any(
            f"lane '{lane}' is missing counter 'commit.idle_cycles'" in message
            for message in messages
        ), messages
        assert any("commit.idle_cyclez" in message for message in messages)

    def test_mutated_reference_flags_every_lane(self):
        overlay = _mutate(
            "src/repro/coresim/_reference.py",
            '"commit.idle_cycles"',
            '"commit.idle_cyclez"',
        )
        messages = [f.message for f in counter_findings(overlay)]
        for lane in ("scalar", "vector", "native"):
            assert any(
                f"lane '{lane}'" in m and "commit.idle_cyclez" in m
                for m in messages
            ), (lane, messages)

    def test_c_slot_removal_detected(self):
        overlay = _mutate(
            "src/repro/coresim/native/_core.c", "    S_FETCH_STALL,\n", ""
        )
        messages = [f.message for f in counter_findings(overlay)]
        assert any("S_ROB_OCC" in m or "NUM_SLOTS" in m for m in messages), messages

    def test_c_struct_field_rename_detected(self):
        overlay = _mutate(
            "src/repro/coresim/native/_core.c",
            "i64 rob_size;",
            "i64 rob_sizz;",
        )
        messages = [f.message for f in counter_findings(overlay)]
        assert any("rob_size" in m for m in messages), messages
        assert any("rob_sizz" in m for m in messages), messages

    def test_vector_gaining_bug_counter_flagged(self):
        # The three bug-only counters are exempt *because* vector never emits
        # them; a vector emission site must trip the exemption check.
        text = (REPO_ROOT / "src/repro/coresim/vector.py").read_text("utf-8")
        overlay = {
            "src/repro/coresim/vector.py": text
            + '\n_SMUGGLED = "bug.extra_delay_cycles"\n'
        }
        messages = [f.message for f in counter_findings(overlay)]
        assert any(
            "bug.extra_delay_cycles" in m and "vector" in m for m in messages
        ), messages

    def test_manifest_kernel_skew_detected(self):
        manifest = json.loads(
            (REPO_ROOT / "tests/data/counter_manifest.json").read_text("utf-8")
        )
        manifest["kernels"]["vector"] = [
            n for n in manifest["kernels"]["vector"] if n != "commit.instructions"
        ]
        overlay = {
            "tests/data/counter_manifest.json": json.dumps(manifest)
        }
        messages = [f.message for f in counter_findings(overlay)]
        assert any(
            "'vector'" in m and "'commit.instructions'" in m for m in messages
        ), messages

    def test_manifest_unknown_name_detected(self):
        manifest = json.loads(
            (REPO_ROOT / "tests/data/counter_manifest.json").read_text("utf-8")
        )
        for names in manifest["kernels"].values():
            names.append("commit.phantom")
        overlay = {"tests/data/counter_manifest.json": json.dumps(manifest)}
        messages = [f.message for f in counter_findings(overlay)]
        assert any(
            "no static emission site" in m and "commit.phantom" in m
            for m in messages
        ), messages


# ---------------------------------------------------------------------------
# hook-contract
# ---------------------------------------------------------------------------


class TestHookContract:
    def test_clean_on_repository(self):
        assert hook_contract.check(tree_with()) == []

    def test_unclassified_hook_fires(self):
        overlay = _mutate(
            "src/repro/coresim/hooks.py",
            "    def serialize(self, uop: MicroOp) -> bool:",
            "    def brand_new_hook(self, uop) -> int:\n"
            "        return 0\n\n"
            "    def serialize(self, uop: MicroOp) -> bool:",
        )
        findings = hook_contract.check(tree_with(overlay))
        assert any(
            "brand_new_hook" in f.message and "unclassified" in f.message
            for f in findings
        )

    def test_hook_flag_removal_fires(self):
        overlay = _mutate(
            "src/repro/coresim/pipeline.py",
            '    ("serialize", "_hook_serialize"),\n',
            "",
        )
        findings = hook_contract.check(tree_with(overlay))
        assert any(
            "'serialize'" in f.message and "_HOOK_FLAGS" in f.message
            for f in findings
        )

    def test_instance_level_hook_binding_fires(self):
        path = "src/repro/synthetic_bug.py"
        source = (
            "from repro.coresim.hooks import CoreBugModel\n\n"
            "class SneakyBug(CoreBugModel):\n"
            "    def __init__(self):\n"
            "        self.serialize = lambda uop: True\n"
        )
        findings = hook_contract.check_overrides(tree_with({path: source}))
        assert any(
            f.rule == "hook-contract" and "self.serialize" in f.message
            for f in findings
        )

    def test_monkeypatched_hook_fires(self):
        path = "src/repro/synthetic_bug.py"
        source = (
            "from repro.coresim.hooks import CoreBugModel\n\n"
            "CoreBugModel.serialize = lambda self, uop: True\n"
        )
        findings = hook_contract.check_overrides(tree_with({path: source}))
        assert any("monkeypatched" in f.message for f in findings)

    def test_setattr_hook_fires(self):
        path = "src/repro/synthetic_bug.py"
        source = (
            "from repro.coresim.hooks import CoreBugModel\n\n"
            'setattr(CoreBugModel, "serialize", lambda self, uop: True)\n'
        )
        findings = hook_contract.check_overrides(tree_with({path: source}))
        assert any("setattr" in f.message for f in findings)

    def test_class_level_override_is_fine(self):
        path = "src/repro/synthetic_bug.py"
        source = (
            "from repro.coresim.hooks import CoreBugModel\n\n"
            "class HonestBug(CoreBugModel):\n"
            "    def serialize(self, uop):\n"
            "        return True\n"
        )
        assert hook_contract.check_overrides(tree_with({path: source})) == []

    def test_supports_native_must_defer(self):
        overlay = _mutate(
            "src/repro/coresim/native/kernel.py",
            "return supports_vector(bug)",
            "return True",
        )
        findings = hook_contract.check_native_defers(tree_with(overlay))
        assert findings and "supports_vector" in findings[0].message


# ---------------------------------------------------------------------------
# protocol-constant
# ---------------------------------------------------------------------------


class TestProtocolConstants:
    def test_clean_on_repository(self):
        assert protocol_constants.check(tree_with()) == []

    def test_redefinition_fires(self):
        path = "src/repro/synthetic_proto.py"
        source = "PROTOCOL_VERSION = 2\n"
        findings = protocol_constants.check(tree_with({path: source}))
        assert any(
            "redefined outside its canonical home" in f.message for f in findings
        )

    def test_import_from_wrong_module_fires(self):
        path = "src/repro/synthetic_proto.py"
        source = "from repro.runtime.backends.remote import PROTOCOL_VERSION\n"
        findings = protocol_constants.check(tree_with({path: source}))
        assert any("canonical module" in f.message for f in findings)

    def test_import_from_canonical_module_ok(self):
        path = "src/repro/synthetic_proto.py"
        source = "from repro.runtime.framing import PROTOCOL_VERSION\n"
        assert protocol_constants.check(tree_with({path: source})) == []

    def test_hand_rolled_frame_header_fires(self):
        path = "src/repro/synthetic_proto.py"
        source = 'import struct\nHEADER = struct.Struct(">Q")\n'
        findings = protocol_constants.check(tree_with({path: source}))
        assert any("frame-header format" in f.message for f in findings)

    def test_missing_canonical_definition_fires(self):
        overlay = _mutate(
            "src/repro/runtime/framing.py",
            "PROTOCOL_VERSION = 2",
            "PROTOCOL_VERSION = int('2')",
        )
        findings = protocol_constants.check(tree_with(overlay))
        assert any("literal integer" in f.message for f in findings)

    def test_liveness_frame_kind_redefinition_fires(self):
        path = "src/repro/synthetic_proto.py"
        source = 'HEARTBEAT = "heartbeat"\n'
        findings = protocol_constants.check(tree_with({path: source}))
        assert any(
            "HEARTBEAT redefined outside its canonical home" in f.message
            for f in findings
        )

    def test_liveness_timing_redefinition_fires(self):
        path = "src/repro/synthetic_proto.py"
        source = "LIVENESS_DEADLINE = 30.0\n"
        findings = protocol_constants.check(tree_with({path: source}))
        assert any(
            "LIVENESS_DEADLINE redefined outside its canonical home" in f.message
            for f in findings
        )

    def test_liveness_constants_import_from_framing_ok(self):
        path = "src/repro/synthetic_proto.py"
        source = (
            "from repro.runtime.framing import (\n"
            "    HEARTBEAT, HEARTBEAT_INTERVAL, LIVENESS_DEADLINE, PING, PONG)\n"
        )
        assert protocol_constants.check(tree_with({path: source})) == []

    def test_liveness_timing_must_be_numeric_literal(self):
        overlay = _mutate(
            "src/repro/runtime/framing.py",
            "HEARTBEAT_INTERVAL = 1.0",
            'HEARTBEAT_INTERVAL = float("1.0")',
        )
        findings = protocol_constants.check(tree_with(overlay))
        assert any("literal number" in f.message for f in findings)

    def test_frame_kind_must_be_string_literal(self):
        overlay = _mutate(
            "src/repro/runtime/framing.py",
            'PING = "ping"',
            'PING = str("ping")',
        )
        findings = protocol_constants.check(tree_with(overlay))
        assert any("literal string" in f.message for f in findings)


# ---------------------------------------------------------------------------
# native gate + sanitizer wiring
# ---------------------------------------------------------------------------


class TestNativeGate:
    def test_werror_clean_or_skipped(self):
        findings = native_gate.check(tree_with())
        assert findings == []

    def test_warning_becomes_finding(self):
        from repro.coresim.native import build

        if build.find_compiler() is None:
            pytest.skip("no C compiler on this host")
        text = (REPO_ROOT / "src/repro/coresim/native/_core.c").read_text("utf-8")
        overlay = {
            "src/repro/coresim/native/_core.c": text
            + "\nstatic int lint_fixture(int unused) { return 0; }\n"
        }
        findings = native_gate.check(tree_with(overlay))
        assert findings, "expected -Wall/-Wextra to flag the unused fixture"

    def test_sanitize_mode_parsing(self, monkeypatch):
        from repro.coresim.native import build

        monkeypatch.delenv(build.SANITIZE_ENV_VAR, raising=False)
        assert build.sanitize_mode() is None
        assert build.active_cflags() == build.CFLAGS
        monkeypatch.setenv(build.SANITIZE_ENV_VAR, "1")
        assert build.sanitize_mode() == "address,undefined"
        assert "-fsanitize=address,undefined" in build.active_cflags()
        monkeypatch.setenv(build.SANITIZE_ENV_VAR, "undefined")
        assert build.sanitize_mode() == "undefined"
        monkeypatch.setenv(build.SANITIZE_ENV_VAR, "off")
        assert build.sanitize_mode() is None

    def test_sanitize_forces_serial_backend(self, monkeypatch):
        from repro.coresim.native import build
        from repro.runtime.backends import SerialBackend, parse_backend

        monkeypatch.setenv(build.SANITIZE_ENV_VAR, "1")
        with pytest.warns(RuntimeWarning, match="serial"):
            backend = parse_backend("local:4")
        assert isinstance(backend, SerialBackend)

    def test_sanitize_changes_cache_key(self, monkeypatch, tmp_path):
        """The sanitized artifact must never collide with the regular one."""
        from repro.coresim.native import build

        if build.find_compiler() is None:
            pytest.skip("no C compiler on this host")
        monkeypatch.setenv(build.CACHE_ENV_VAR, str(tmp_path))
        monkeypatch.delenv(build.SANITIZE_ENV_VAR, raising=False)
        build._reset_for_tests()
        plain = build.library_path()
        monkeypatch.setenv(build.SANITIZE_ENV_VAR, "1")
        build._reset_for_tests()
        sanitized = build.library_path()
        build._reset_for_tests()
        assert plain is not None and sanitized is not None
        assert plain != sanitized


# ---------------------------------------------------------------------------
# CLI end-to-end
# ---------------------------------------------------------------------------


class TestCli:
    def test_repository_is_lint_clean(self):
        findings = run_lint(REPO_ROOT)
        live = [f for f in findings if not f.suppressed]
        assert live == [], [f"{f.location()}: {f.rule}: {f.message}" for f in live]
        # The sanctioned suppressions must be present (not an empty report).
        assert any(f.suppressed for f in findings)

    def test_exit_codes(self, capsys):
        assert main(["--root", str(REPO_ROOT), "--no-native"]) == 0
        capsys.readouterr()
        assert main(["--root", "/nonexistent"]) == 2

    def test_json_format_is_machine_readable(self, capsys):
        code = main(["--root", str(REPO_ROOT), "--format", "json", "--no-native"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "repro-lint"
        assert payload["live"] == 0
        assert payload["suppressed"] > 0
        assert all("rule" in f and "path" in f for f in payload["findings"])

    def test_only_family_selection(self, capsys):
        code = main(
            ["--root", str(REPO_ROOT), "--only", "protocol-constant"]
        )
        assert code == 0

    def test_list_rules_covers_every_family(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for family in FAMILIES:
            assert family in out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--no-native",
             "--root", str(REPO_ROOT)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 violation(s)" in proc.stdout
