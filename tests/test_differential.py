"""Differential-testing oracle for the simulation kernels.

Four implementations of the core model must agree bit-for-bit on every
sampled counter: the frozen seed pipeline (``coresim/_reference``), the
optimized scalar pipeline (PR 2), the numpy-batched lockstep vector
kernel (``coresim/vector``) and the compiled C native kernel
(``coresim/native``).  This suite grows the hand-picked equivalence
matrix of ``test_perf_equivalence.py`` into a *generator*: seeded random
(synthetic trace, preset mutation, bug x severity) triples hammer the
corners no hand-written case covers.

The fuzz seed comes from ``REPRO_FUZZ_SEED`` (CI rotates it per run and
logs it); the failing seed and case id are embedded in every assertion
message, so any CI failure replays locally with::

    REPRO_FUZZ_SEED=<seed> python -m pytest tests/test_differential.py

Also here: the golden per-preset digests (oracle drift is caught in seconds
without executing the reference pipeline — regenerate via
``tests/data/make_golden.py``) and the cross-kernel engine/store contract
(result-store content must not depend on the kernel that produced it).
"""

import dataclasses
import importlib.util
import json
import os
import random
from pathlib import Path

import numpy as np
import pytest

from repro.bugs.core_bugs import (
    BPTableReduction,
    DependencyDelay,
    IQPressureDelay,
    L2LatencyBug,
    LongBranchDelay,
    MispredictPenalty,
    RegisterReduction,
    SerializeOpcode,
    StoresToLineDelay,
)
from repro.bugs.registry import core_bug_suite
from repro.coresim import (
    KERNELS,
    choose_kernel,
    native_available,
    resolve_kernel,
    simulate_trace,
    simulate_trace_batch,
    supports_native,
    supports_vector,
)
from repro.coresim._reference import reference_simulate_trace
from repro.coresim.vector import simulate_batch
from repro.runtime import JobEngine, ResultStore, SimulationJob, TraceRegistry
from repro.uarch import all_core_microarches, core_microarch
from repro.workloads import (
    MicroOp,
    Opcode,
    TraceGenerator,
    build_program,
    decode_trace,
    workload,
)
from repro.workloads.ingest import ingest_trace

DATA_DIR = Path(__file__).parent / "data"

#: Default fuzz seed (deterministic local runs); CI rotates via the env var.
DEFAULT_FUZZ_SEED = 20260730

FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "") or DEFAULT_FUZZ_SEED)

#: Scenarios x traces-per-scenario = fuzz cases run in tier-1.
FUZZ_SCENARIOS = 13
FUZZ_TRACES_PER_SCENARIO = 4


def _assert_identical(a, b, context):
    """Counter-bit-identity between two SimulationResults."""
    assert a.cycles == b.cycles, f"{context}: cycles {a.cycles} != {b.cycles}"
    assert a.instructions == b.instructions, context
    sa, sb = a.series, b.series
    assert sa.step_cycles == sb.step_cycles, context
    assert set(sa.counters) == set(sb.counters), (
        context,
        set(sa.counters) ^ set(sb.counters),
    )
    assert np.array_equal(sa.ipc, sb.ipc), context
    for name in sa.counters:
        assert np.array_equal(sa.counters[name], sb.counters[name]), (context, name)


# ---------------------------------------------------------------------------
# Seeded fuzz generation
# ---------------------------------------------------------------------------


_FUZZ_OPCODES = [
    Opcode.ADD, Opcode.SUB, Opcode.XOR, Opcode.MUL, Opcode.DIV,
    Opcode.FADD, Opcode.FMUL, Opcode.FDIV, Opcode.VADD, Opcode.POPCNT,
    Opcode.LOAD, Opcode.STORE, Opcode.BRANCH, Opcode.CALL, Opcode.RET,
    Opcode.NOP, Opcode.MOV,
]


def _random_uops(rng: random.Random, length: int) -> list[MicroOp]:
    """Adversarial random micro-ops: duplicate sources, clashing store/load
    addresses, indirect branches, odd pcs — the corners synthetic programs
    rarely produce."""
    uops = []
    pc = rng.randrange(0, 1 << 20) * 4
    hot_addresses = [rng.randrange(0, 1 << 24) * 8 for _ in range(8)]
    for _ in range(length):
        opcode = rng.choice(_FUZZ_OPCODES)
        n_srcs = rng.randrange(0, 3)
        srcs = tuple(rng.randrange(0, 32) for _ in range(n_srcs))
        if srcs and rng.random() < 0.15:
            srcs = (srcs[0], srcs[0])  # duplicate operand
        dest = rng.randrange(0, 32) if rng.random() < 0.6 else None
        address = None
        taken = None
        target = None
        indirect = False
        if opcode in (Opcode.LOAD, Opcode.STORE):
            address = (
                rng.choice(hot_addresses)
                if rng.random() < 0.5
                else rng.randrange(0, 1 << 28)
            )
            dest = rng.randrange(0, 32) if opcode is Opcode.LOAD else None
        elif opcode in (Opcode.BRANCH, Opcode.CALL, Opcode.RET):
            dest = None
            taken = rng.random() < 0.55
            target = pc + rng.randrange(-4096, 4096) * 4
            indirect = rng.random() < 0.2
        uops.append(
            MicroOp(
                opcode=opcode,
                srcs=srcs,
                dest=dest,
                pc=pc,
                address=address,
                taken=taken,
                target=target,
                indirect=indirect,
            )
        )
        pc += 4
    return uops


def _mutate_preset(rng: random.Random, config):
    """A structurally-valid random variation of a real preset."""
    fields = {}
    if rng.random() < 0.7:
        fields["width"] = rng.choice([1, 2, 3, 4, 6, 8])
    if rng.random() < 0.7:
        fields["rob_size"] = rng.choice([16, 24, 48, 96, 160, 224])
        fields["iq_size"] = 0  # re-derive from the new ROB
        fields["lsq_size"] = 0
        fields["num_phys_regs"] = 0
    if rng.random() < 0.4:
        fields["fetch_buffer"] = rng.choice([4, 8, 16, 32])
    if rng.random() < 0.4:
        fields["div_latency"] = rng.choice([8, 20, 40, 69])
    if not fields:
        fields["width"] = max(1, config.width - 1)
    return dataclasses.replace(config, name=f"{config.name}-fuzz", **fields)


def _random_bug(rng: random.Random):
    """None, a structural (vector-eligible) bug, or a hook bug x severity."""
    roll = rng.random()
    if roll < 0.25:
        return None
    if roll < 0.5:
        return rng.choice(
            [
                RegisterReduction(rng.choice([4, 16, 32, 64])),
                BPTableReduction(rng.choice([1024, 3072, 3968])),
            ]
        )
    return rng.choice(
        [
            SerializeOpcode(rng.choice([Opcode.XOR, Opcode.LOAD, Opcode.ADD])),
            DependencyDelay(Opcode.ADD, Opcode.LOAD, rng.choice([3, 9, 27])),
            IQPressureDelay(rng.choice([4, 8]), rng.choice([2, 10])),
            MispredictPenalty(rng.choice([5, 15, 45])),
            StoresToLineDelay(rng.choice([2, 6]), rng.choice([4, 12])),
            L2LatencyBug(rng.choice([5, 25])),
            LongBranchDelay(rng.choice([64, 1024]), rng.choice([4, 16])),
        ]
    )


def _fuzz_cases():
    """The seeded (config, bug, step, traces) scenarios for this run."""
    rng = random.Random(FUZZ_SEED)
    presets = all_core_microarches()
    programs = [
        build_program(workload("403.gcc"), seed=rng.randrange(1 << 16)),
        build_program(workload("458.sjeng"), seed=rng.randrange(1 << 16)),
    ]
    scenarios = []
    for case in range(FUZZ_SCENARIOS):
        config = _mutate_preset(rng, rng.choice(presets))
        bug = _random_bug(rng)
        step = rng.choice([64, 256, 512])
        warmup = rng.random() < 0.8
        traces = []
        for _ in range(FUZZ_TRACES_PER_SCENARIO):
            if rng.random() < 0.5:
                traces.append(
                    decode_trace(
                        TraceGenerator(
                            rng.choice(programs), seed=rng.randrange(1 << 16)
                        ).generate(rng.randrange(150, 900))
                    )
                )
            else:
                traces.append(
                    decode_trace(_random_uops(rng, rng.randrange(120, 700)))
                )
        scenarios.append((case, config, bug, step, warmup, traces))
    return scenarios


class TestDifferentialFuzz:
    """reference == scalar == vector == native over seeded random triples."""

    def test_seed_is_reported(self, capsys):
        print(f"[differential] REPRO_FUZZ_SEED={FUZZ_SEED}")
        assert FUZZ_SEED >= 0

    @pytest.mark.parametrize("case,config,bug,step,warmup,traces", _fuzz_cases(),
                             ids=lambda v: str(v) if isinstance(v, int) else "")
    def test_fuzz_case(self, case, config, bug, step, warmup, traces):
        context = (
            f"seed={FUZZ_SEED} case={case} config={config.name} "
            f"bug={getattr(bug, 'name', None)} step={step} warmup={warmup} "
            f"(replay: REPRO_FUZZ_SEED={FUZZ_SEED})"
        )
        vector_results = simulate_trace_batch(
            config, traces, bug=bug, step_cycles=step, warmup=warmup,
            kernel="vector",
        )
        # kernel="native" always runs: ineligible bugs (and compiler-less
        # hosts) fall back to scalar, so the comparison stays meaningful —
        # on eligible cases it exercises the compiled C loop end to end.
        native_results = simulate_trace_batch(
            config, traces, bug=bug, step_cycles=step, warmup=warmup,
            kernel="native",
        )
        for lane, trace in enumerate(traces):
            scalar = simulate_trace(
                config, trace, bug=bug, step_cycles=step, warmup=warmup,
                kernel="scalar",
            )
            reference = reference_simulate_trace(
                config, list(trace), bug=bug, step_cycles=step, warmup=warmup
            )
            _assert_identical(reference, scalar, f"{context} lane={lane} ref-vs-scalar")
            _assert_identical(
                scalar, vector_results[lane], f"{context} lane={lane} scalar-vs-vector"
            )
            _assert_identical(
                scalar, native_results[lane], f"{context} lane={lane} scalar-vs-native"
            )

    def test_case_count_meets_floor(self):
        # The tier-1 contract: at least 50 differential cases per run.
        assert FUZZ_SCENARIOS * FUZZ_TRACES_PER_SCENARIO >= 50


# ---------------------------------------------------------------------------
# Vector kernel unit behaviour
# ---------------------------------------------------------------------------


class TestVectorKernel:
    def test_supports_vector_classification(self):
        assert supports_vector(None)
        assert supports_vector(RegisterReduction(8))
        assert supports_vector(BPTableReduction(512))
        assert not supports_vector(SerializeOpcode(Opcode.XOR))
        assert not supports_vector(L2LatencyBug(10))
        assert not supports_vector(MispredictPenalty(9))

    def test_kernel_resolution(self, monkeypatch):
        assert resolve_kernel(None) == "scalar"
        assert resolve_kernel("vector") == "vector"
        assert resolve_kernel("native") == "native"
        assert resolve_kernel("auto") == "auto"
        monkeypatch.setenv("REPRO_KERNEL", "vector")
        assert resolve_kernel(None) == "vector"
        assert resolve_kernel("scalar") == "scalar"
        monkeypatch.setenv("REPRO_KERNEL", "native")
        assert resolve_kernel(None) == "native"
        with pytest.raises(ValueError):
            resolve_kernel("simd")
        assert set(KERNELS) == {"scalar", "vector", "native", "auto"}

    def test_auto_policy_never_picks_vector(self):
        """auto resolves to native (eligible + built) or scalar, never vector."""
        for bug in (None, RegisterReduction(8), SerializeOpcode(Opcode.XOR)):
            for lanes in (1, 8, 192):
                picked = choose_kernel(bug, lanes=lanes)
                assert picked in ("native", "scalar")
                if not (supports_native(bug) and native_available()):
                    assert picked == "scalar"

    def test_hook_bug_falls_back_to_scalar(self, monkeypatch):
        """kernel=vector with an ineligible bug must still be exact."""
        monkeypatch.setenv("REPRO_KERNEL", "vector")
        program = build_program(workload("403.gcc"), seed=3)
        trace = decode_trace(TraceGenerator(program, seed=4).generate(600))
        config = core_microarch("Skylake")
        bug = SerializeOpcode(Opcode.XOR)
        env_result = simulate_trace(config, trace, bug=bug, step_cycles=256)
        scalar = simulate_trace(
            config, trace, bug=bug, step_cycles=256, kernel="scalar"
        )
        _assert_identical(scalar, env_result, "hook-bug fallback")

    def test_ragged_batch_with_straggler_fallback(self):
        """Mixed trace lengths drive compaction and the scalar hand-off."""
        program = build_program(workload("403.gcc"), seed=7)
        traces = [
            decode_trace(TraceGenerator(program, seed=100 + i).generate(150))
            for i in range(36)
        ]
        traces.append(
            decode_trace(TraceGenerator(program, seed=999).generate(2500))
        )
        config = core_microarch("Cedarview")
        vec = simulate_trace_batch(config, traces, step_cycles=256, kernel="vector")
        for trace, got in zip(traces, vec):
            want = simulate_trace(config, trace, step_cycles=256, kernel="scalar")
            _assert_identical(want, got, "ragged+fallback")

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            simulate_batch(core_microarch("K8"), [decode_trace([])], step_cycles=64)

    def test_batch_of_one_matches_scalar(self, gcc_trace, skylake):
        trace = decode_trace(gcc_trace[:700])
        scalar = simulate_trace(skylake, trace, step_cycles=256, kernel="scalar")
        vector = simulate_trace(skylake, trace, step_cycles=256, kernel="vector")
        _assert_identical(scalar, vector, "batch-of-one")

    def test_sub_batch_split_matches_unsplit(self, gcc_program):
        traces = [
            decode_trace(TraceGenerator(gcc_program, seed=60 + i).generate(300))
            for i in range(9)
        ]
        config = core_microarch("K8")
        whole = simulate_batch(config, traces, step_cycles=256)
        split = simulate_batch(config, traces, step_cycles=256, max_lanes=4)
        for a, b in zip(whole, split):
            _assert_identical(a, b, "sub-batch split")


# ---------------------------------------------------------------------------
# Golden digests: oracle drift caught without executing the reference
# ---------------------------------------------------------------------------


def _load_make_golden():
    spec = importlib.util.spec_from_file_location(
        "make_golden", DATA_DIR / "make_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestGoldenDigests:
    @pytest.fixture(scope="class")
    def golden(self):
        with open(DATA_DIR / "golden_series.json", "r", encoding="utf-8") as handle:
            return json.load(handle)

    @pytest.fixture(scope="class")
    def make_golden(self):
        return _load_make_golden()

    def test_golden_covers_every_preset(self, golden):
        assert set(golden["digests"]) == {c.name for c in all_core_microarches()}
        assert len(golden["digests"]) == 20

    def test_scalar_kernel_matches_golden(self, golden, make_golden):
        trace = make_golden.golden_trace()
        for config in all_core_microarches():
            result = simulate_trace(
                config, trace, step_cycles=make_golden.STEP_CYCLES, kernel="scalar"
            )
            digest = make_golden.series_digest(result)
            assert digest == golden["digests"][config.name], (
                f"{config.name}: scalar kernel drifted from the pinned oracle "
                "(regenerate via tests/data/make_golden.py ONLY for a "
                "deliberate semantic change)"
            )

    def test_vector_kernel_matches_golden(self, golden, make_golden):
        trace = make_golden.golden_trace()
        for config in all_core_microarches():
            result = simulate_trace_batch(
                config,
                [trace],
                step_cycles=make_golden.STEP_CYCLES,
                kernel="vector",
            )[0]
            digest = make_golden.series_digest(result)
            assert digest == golden["digests"][config.name], (
                f"{config.name}: vector kernel drifted from the pinned oracle"
            )

    def test_native_kernel_matches_golden(self, golden, make_golden):
        if not native_available():
            pytest.skip("no C compiler on this host (scalar fallback covered "
                        "by test_native_kernel.py)")
        trace = make_golden.golden_trace()
        for config in all_core_microarches():
            result = simulate_trace(
                config, trace, step_cycles=make_golden.STEP_CYCLES, kernel="native"
            )
            digest = make_golden.series_digest(result)
            assert digest == golden["digests"][config.name], (
                f"{config.name}: native kernel drifted from the pinned oracle"
            )


# ---------------------------------------------------------------------------
# Cross-kernel engine/store contract
# ---------------------------------------------------------------------------


def _engine_jobs(registry: TraceRegistry, trace_ids, step=256):
    from repro.bugs.core_bugs import SerializeOpcode as Ser

    return [
        SimulationJob(study="core", config=core_microarch(name), bug=bug,
                      trace_id=tid, step=step)
        for name in ("Skylake", "K8")
        for bug in (None, RegisterReduction(16), Ser(Opcode.XOR))
        for tid in trace_ids
    ]


class TestCrossKernelEngine:
    @pytest.fixture()
    def synthetic_registry(self, gcc_program):
        registry = TraceRegistry()
        ids = [
            registry.register(
                decode_trace(TraceGenerator(gcc_program, seed=70 + i).generate(500))
            )
            for i in range(4)
        ]
        return registry, ids

    def test_vector_engine_results_match_scalar(self, synthetic_registry, monkeypatch):
        registry, ids = synthetic_registry
        jobs = _engine_jobs(registry, ids)
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        scalar = JobEngine(jobs=1).run(jobs, registry.traces)
        monkeypatch.setenv("REPRO_KERNEL", "vector")
        vector = JobEngine(jobs=1).run(jobs, registry.traces)
        for a, b in zip(scalar, vector):
            assert a.cycles == b.cycles
            assert set(a.counters) == set(b.counters)
            for name in a.counters:
                assert np.array_equal(a.counters[name], b.counters[name]), name

    def test_scalar_store_replays_under_vector(
        self, synthetic_registry, tmp_path, monkeypatch
    ):
        """Content digests must not depend on the kernel: a store filled by
        the scalar kernel serves a REPRO_KERNEL=vector run with executed=0."""
        registry, ids = synthetic_registry
        jobs = _engine_jobs(registry, ids)
        store = ResultStore(tmp_path / "store")
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        filler = JobEngine(jobs=1, store=store)
        filler.run(jobs, registry.traces)
        assert filler.stats.executed == len(jobs)
        monkeypatch.setenv("REPRO_KERNEL", "vector")
        replayer = JobEngine(jobs=1, store=store)
        replayer.run(jobs, registry.traces)
        assert replayer.stats.executed == 0
        assert replayer.stats.store_hits == len(jobs)

    def test_vector_store_replays_under_scalar(
        self, synthetic_registry, tmp_path, monkeypatch
    ):
        registry, ids = synthetic_registry
        jobs = _engine_jobs(registry, ids)
        store = ResultStore(tmp_path / "store")
        monkeypatch.setenv("REPRO_KERNEL", "vector")
        JobEngine(jobs=1, store=store).run(jobs, registry.traces)
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        replayer = JobEngine(jobs=1, store=store)
        replayer.run(jobs, registry.traces)
        assert replayer.stats.executed == 0

    def test_native_engine_results_match_scalar(self, synthetic_registry, monkeypatch):
        registry, ids = synthetic_registry
        jobs = _engine_jobs(registry, ids)
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        scalar = JobEngine(jobs=1).run(jobs, registry.traces)
        monkeypatch.setenv("REPRO_KERNEL", "native")
        native = JobEngine(jobs=1).run(jobs, registry.traces)
        for a, b in zip(scalar, native):
            assert a.cycles == b.cycles
            assert set(a.counters) == set(b.counters)
            for name in a.counters:
                assert np.array_equal(a.counters[name], b.counters[name]), name

    def test_scalar_store_replays_under_native(
        self, synthetic_registry, tmp_path, monkeypatch
    ):
        """Store keys stay kernel-independent for the native kernel too: a
        scalar-filled store serves a REPRO_KERNEL=native run with executed=0,
        and the native-filled store replays under scalar the same way."""
        registry, ids = synthetic_registry
        jobs = _engine_jobs(registry, ids)
        store = ResultStore(tmp_path / "store")
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        filler = JobEngine(jobs=1, store=store)
        filler.run(jobs, registry.traces)
        assert filler.stats.executed == len(jobs)
        monkeypatch.setenv("REPRO_KERNEL", "native")
        replayer = JobEngine(jobs=1, store=store)
        replayer.run(jobs, registry.traces)
        assert replayer.stats.executed == 0
        assert replayer.stats.store_hits == len(jobs)

    def test_native_store_replays_under_scalar(
        self, synthetic_registry, tmp_path, monkeypatch
    ):
        registry, ids = synthetic_registry
        jobs = _engine_jobs(registry, ids)
        store = ResultStore(tmp_path / "store")
        monkeypatch.setenv("REPRO_KERNEL", "native")
        JobEngine(jobs=1, store=store).run(jobs, registry.traces)
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        replayer = JobEngine(jobs=1, store=store)
        replayer.run(jobs, registry.traces)
        assert replayer.stats.executed == 0

    def test_cross_kernel_on_ingested_golden_traces(self, tmp_path, monkeypatch):
        """Same contract over the checked-in on-disk trace samples."""
        registry = TraceRegistry()
        ids = []
        for sample in ("403.gcc.champsim.gz", "458.sjeng.champsim.xz"):
            ingested = ingest_trace(DATA_DIR / sample)
            ids.append(registry.register(decode_trace(ingested.decoded.uops[:600])))
        jobs = [
            SimulationJob(study="core", config=core_microarch(name), bug=bug,
                          trace_id=tid, step=256)
            for name in ("Skylake", "Cedarview")
            for bug in (None, BPTableReduction(1024))
            for tid in ids
        ]
        store = ResultStore(tmp_path / "store")
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        scalar = JobEngine(jobs=1, store=store).run(jobs, registry.traces)
        monkeypatch.setenv("REPRO_KERNEL", "vector")
        replayer = JobEngine(jobs=1, store=store)
        vector = replayer.run(jobs, registry.traces)
        assert replayer.stats.executed == 0  # digests are kernel-independent
        # and a fresh vector run over the same jobs is bit-identical
        fresh = JobEngine(jobs=1).run(jobs, registry.traces)
        for a, b in zip(scalar, fresh):
            assert a.cycles == b.cycles
            for name in a.counters:
                assert np.array_equal(a.counters[name], b.counters[name]), name
        del vector

    def test_grouped_planning_keeps_sweeps_contiguous(
        self, synthetic_registry, monkeypatch
    ):
        from repro.runtime.execution import vector_group_key

        registry, ids = synthetic_registry
        jobs = _engine_jobs(registry, ids)
        monkeypatch.setenv("REPRO_KERNEL", "vector")
        engine = JobEngine(jobs=2)
        plan = engine._plan_chunks(list(enumerate(jobs)), registry.traces)
        # every job appears exactly once
        seen = sorted(i for chunk in plan for i, _ in chunk)
        assert seen == list(range(len(jobs)))
        # within each chunk, batchable groups are contiguous runs
        for chunk in plan:
            keys = [vector_group_key(job) for _, job in chunk]
            compact = [k for k, prev in zip(keys, [object()] + keys) if k != prev]
            groupable = [k for k in compact if k is not None]
            assert len(groupable) == len(set(groupable)), "group split apart"

    def test_engine_kernel_argument_validated(self):
        with pytest.raises(ValueError):
            JobEngine(jobs=1, kernel="warp")

    def test_explicit_kernel_rejected_on_parallel_backend(self, monkeypatch):
        """Workers resolve the kernel from their environment, so an explicit
        kernel= that the environment contradicts must fail fast instead of
        planning batches the workers would execute job by job."""
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        with pytest.raises(ValueError, match="REPRO_KERNEL"):
            JobEngine(jobs=2, kernel="vector")
        # consistent environment + argument is fine
        monkeypatch.setenv("REPRO_KERNEL", "vector")
        JobEngine(jobs=2, kernel="vector").close()
        # inline backends honour the argument alone
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        JobEngine(jobs=1, kernel="vector").close()
