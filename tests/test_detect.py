"""Tests for the detection methodology: counters, stages, metrics, probes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coresim.counters import CounterTimeSeries
from repro.detect import (
    MAX_COUNTERS,
    MIN_COUNTERS,
    Probe,
    ProbeModel,
    ProbeModelConfig,
    RuleBasedClassifier,
    SimulationCache,
    build_probes,
    compute_metrics,
    manual_counter_set,
    roc_auc,
    roc_curve,
    select_counters,
)
from repro.uarch import core_microarch


def _series(num_steps, seed=0, extra=None):
    rng = np.random.default_rng(seed)
    ipc = rng.uniform(0.5, 2.0, size=num_steps)
    counters = {
        "c.correlated": ipc * 3.0 + rng.normal(scale=0.01, size=num_steps),
        "c.redundant": ipc * 3.0 + rng.normal(scale=0.01, size=num_steps) + 5.0,
        "c.noise": rng.normal(size=num_steps),
        "c.anticorrelated": -2.0 * ipc + rng.normal(scale=0.01, size=num_steps),
        "commit.instructions": ipc * 512,
        "commit.branches": ipc * 100,
        "bp.lookups": ipc * 100,
        "cycles": np.full(num_steps, 512.0),
    }
    if extra:
        counters.update(extra)
    return CounterTimeSeries(step_cycles=512, counters=counters, ipc=ipc)


class TestCounterSelection:
    def test_selects_correlated_and_prunes_redundant(self):
        series = [_series(40, seed=s) for s in range(3)]
        chosen = select_counters(series, min_counters=1)
        assert chosen  # at least one strongly correlated counter survives
        assert not ("c.correlated" in chosen and "c.redundant" in chosen)
        assert "commit.instructions" not in chosen  # excluded (it is the target)
        assert "c.noise" not in chosen
        assert 1 <= len(chosen) <= MAX_COUNTERS
        default = select_counters(series)
        assert MIN_COUNTERS <= len(default) <= MAX_COUNTERS

    def test_falls_back_to_top_counters_when_none_pass(self):
        rng = np.random.default_rng(0)
        counters = {f"c.n{i}": rng.normal(size=30) for i in range(6)}
        series = CounterTimeSeries(step_cycles=512, counters=counters,
                                   ipc=rng.uniform(0.5, 1.5, 30))
        chosen = select_counters([series])
        assert len(chosen) >= MIN_COUNTERS

    def test_manual_counter_set_subset_of_available(self, skylake, gcc_trace):
        from repro.coresim import simulate_trace
        result = simulate_trace(skylake, gcc_trace[:1500], step_cycles=256)
        manual = manual_counter_set([result.series])
        assert manual
        assert all(name in result.series.counters for name in manual)


class TestStage1:
    @staticmethod
    def _fake_probe(counters):
        from types import SimpleNamespace

        simpoint = SimpleNamespace(name="fake/sp01", benchmark="fake", trace=[],
                                   weight=1.0)
        return Probe(simpoint=simpoint, counters=counters)

    def test_probe_model_end_to_end(self):
        probe = self._fake_probe(["c.correlated", "c.anticorrelated"])
        model = ProbeModel(probe=probe,
                           config=ProbeModelConfig(engine="GBT-150",
                                                   use_arch_features=False))
        train = {f"arch{i}": _series(30, seed=i) for i in range(4)}
        val = {"val0": _series(30, seed=10)}
        val_mse = model.fit(train, val)
        assert val_mse < 0.05
        clean_error = model.inference_error(_series(30, seed=20))
        # A series whose counter<->IPC relation is destroyed must error more.
        broken = _series(30, seed=21)
        broken.counters["c.correlated"] = np.random.default_rng(5).normal(size=30)
        broken.counters["c.anticorrelated"] = np.random.default_rng(6).normal(size=30)
        assert model.inference_error(broken) > clean_error

    def test_requires_counters(self):
        probe = self._fake_probe([])
        model = ProbeModel(probe=probe, config=ProbeModelConfig(use_arch_features=False))
        with pytest.raises(ValueError):
            model.fit({"a": _series(10)}, {})


class TestStage2:
    def _vectors(self, rng, n, scale):
        return [rng.uniform(0.5, 1.5, size=5) * scale for _ in range(n)]

    def test_detects_separated_populations(self):
        rng = np.random.default_rng(0)
        negatives = self._vectors(rng, 8, 1.0)
        positives = self._vectors(rng, 20, 8.0)
        classifier = RuleBasedClassifier().fit(positives, negatives)
        assert classifier.predict(np.full(5, 9.0))
        assert not classifier.predict(np.full(5, 0.8))
        assert classifier.score(np.full(5, 9.0)) > classifier.score(np.full(5, 0.8))

    def test_paper_thresholds_without_calibration(self):
        rng = np.random.default_rng(1)
        negatives = self._vectors(rng, 8, 1.0)
        positives = self._vectors(rng, 20, 40.0)
        classifier = RuleBasedClassifier(calibrate_threshold=False)
        classifier.fit(positives, negatives)
        assert classifier.decision_threshold == 1.0
        assert classifier.predict(np.full(5, 60.0))

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            RuleBasedClassifier().fit([], [np.ones(3)])
        with pytest.raises(ValueError):
            RuleBasedClassifier().fit([np.ones(3)], [np.ones(4)])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RuleBasedClassifier().score(np.ones(3))

    def test_gamma_vectors_exposed(self):
        rng = np.random.default_rng(2)
        classifier = RuleBasedClassifier().fit(self._vectors(rng, 5, 4.0),
                                               self._vectors(rng, 5, 1.0))
        gamma_pos, gamma_neg = classifier.gamma_vectors(np.ones(5))
        assert gamma_pos.shape == gamma_neg.shape == (5,)
        assert np.all(gamma_neg >= gamma_pos)


class TestDetectionMetrics:
    def test_compute_metrics_counts(self):
        labels = [True, True, False, False, True]
        preds = [True, False, False, True, True]
        metrics = compute_metrics(labels, preds, scores=[0.9, 0.4, 0.1, 0.8, 0.7])
        assert metrics.true_positives == 2
        assert metrics.false_negatives == 1
        assert metrics.false_positives == 1
        assert metrics.tpr == pytest.approx(2 / 3)
        assert metrics.fpr == pytest.approx(0.5)
        assert 0.0 <= metrics.roc_auc <= 1.0

    def test_precision_convention_when_nothing_flagged(self):
        metrics = compute_metrics([True, False], [False, False], [0.1, 0.0])
        assert metrics.precision == 1.0

    def test_roc_auc_perfect_and_random(self):
        labels = np.array([True, True, False, False])
        assert roc_auc(labels, np.array([0.9, 0.8, 0.2, 0.1])) == 1.0
        assert roc_auc(labels, np.array([0.5, 0.5, 0.5, 0.5])) == 0.5
        assert roc_auc(np.array([True, True]), np.array([1.0, 2.0])) == 0.5

    def test_roc_curve_endpoints(self):
        labels = np.array([True, False, True, False])
        scores = np.array([0.9, 0.3, 0.6, 0.2])
        fpr, tpr = roc_curve(labels, scores)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert np.all(np.diff(fpr) >= 0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.floats(0, 1)), min_size=2, max_size=30))
    def test_roc_auc_bounded(self, pairs):
        labels = np.array([p[0] for p in pairs])
        scores = np.array([p[1] for p in pairs])
        assert 0.0 <= roc_auc(labels, scores) <= 1.0


class TestProbesAndCache:
    def test_build_probes_and_cache(self, skylake):
        probes = build_probes(["458.sjeng"], instructions_per_benchmark=6000,
                              interval_size=2000, max_simpoints_per_benchmark=2, seed=1)
        assert probes and all(p.benchmark == "458.sjeng" for p in probes)
        cache = SimulationCache(step_cycles=512)
        first = cache.get(probes[0], skylake)
        again = cache.get(probes[0], skylake)
        assert first is again
        assert cache.misses == 1
        assert len(cache) == 1
        assert first.ipc > 0
