"""Shared fixtures for the test suite (small, fast objects only)."""

import pytest

from repro.uarch import core_microarch
from repro.workloads import TraceGenerator, build_program, workload


@pytest.fixture(scope="session")
def gcc_program():
    """A materialised 403.gcc-like synthetic program."""
    return build_program(workload("403.gcc"), seed=11)


@pytest.fixture(scope="session")
def gcc_trace(gcc_program):
    """A short dynamic trace of the gcc-like program."""
    return TraceGenerator(gcc_program, seed=12).generate(6000)


@pytest.fixture(scope="session")
def skylake():
    return core_microarch("Skylake")


@pytest.fixture(scope="session")
def k8():
    return core_microarch("K8")
