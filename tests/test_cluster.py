"""Cluster backend suite: conformance, chaos, liveness and sweep policies.

The conformance half extends the backend guarantee to ``cluster:N``:
scheduler-managed workers produce :class:`StoredResult` payloads
bit-identical to ``serial``.  The chaos half drives the survival story —
``REPRO_CLUSTER_CHAOS=kill:<n>`` SIGKILLs a worker mid-sweep and the sweep
must still complete with nothing executed twice (store-hit accounting on
replay).  The rest unit-tests the policy seam, the spec grammar and the
elastic resize path.
"""

import sys

import numpy as np
import pytest

from repro.cluster.backend import (
    CHAOS_ENV_VAR,
    ClusterBackend,
    _chaos_from_env,
    parse_cluster_spec,
)
from repro.cluster.policies import (
    ChunkTicket,
    EDDPolicy,
    LJFPolicy,
    SuspendPolicy,
    SweepPolicy,
    parse_policy,
)
from repro.runtime import (
    BackendError,
    JobEngine,
    ResultStore,
    SimulationJob,
    TraceRegistry,
    parse_backend,
)
from repro.runtime.backends.remote import local_worker_command
from repro.uarch import core_microarch
from repro.bugs.core_bugs import SerializeOpcode
from repro.workloads import TraceGenerator, build_program, workload
from repro.workloads.isa import Opcode

#: Script for a worker that handshakes correctly, swallows every frame and
#: never answers — indistinguishable from a live worker except for the
#: missing heartbeats.  (It must keep *reading* so the driver's trace/chunk
#: writes never block on a full pipe.)
HANG_WORKER = """
import sys
from repro.runtime.framing import HELLO, PROTOCOL_VERSION, read_frame, write_frame
read_frame(sys.stdin.buffer)
write_frame(sys.stdout.buffer, HELLO, {"protocol": PROTOCOL_VERSION})
while read_frame(sys.stdin.buffer, allow_eof=True) is not None:
    pass
"""


@pytest.fixture(scope="module")
def tiny_trace():
    program = build_program(workload("403.gcc"), seed=31)
    return TraceGenerator(program, seed=32).generate(1200)


@pytest.fixture(scope="module")
def registry(tiny_trace):
    registry = TraceRegistry()
    registry.register(tiny_trace)
    return registry


def _core_jobs(registry, trace, configs=("Skylake", "K8"), step=256):
    trace_id = registry.register(trace)
    return [
        SimulationJob(study="core", config=core_microarch(name), bug=bug,
                      trace_id=trace_id, step=step)
        for name in configs
        for bug in (None, SerializeOpcode(Opcode.XOR))
    ]


@pytest.fixture(scope="module")
def serial_reference(registry, tiny_trace):
    jobs = _core_jobs(registry, tiny_trace)
    return jobs, JobEngine(backend="serial").run(jobs, registry.traces)


def _assert_stored_equal(first, second):
    assert len(first) == len(second)
    for a, b in zip(first, second):
        assert a.study == b.study
        assert a.config_name == b.config_name
        assert a.bug_name == b.bug_name
        assert a.instructions == b.instructions
        assert a.cycles == b.cycles
        assert a.amat == b.amat
        assert a.step == b.step
        assert np.array_equal(a.ipc, b.ipc)
        assert set(a.counters) == set(b.counters)
        for name in a.counters:
            assert np.array_equal(a.counters[name], b.counters[name]), name


def _ticket(seq, cost=1, priority=0, deadline=None):
    return ChunkTicket(seq=seq, tag=seq, chunk=[], cost=cost,
                       priority=priority, deadline=deadline)


# -- conformance -------------------------------------------------------------


class TestClusterConformance:
    @pytest.mark.parametrize("policy", ["fifo", "ljf"])
    def test_bit_identical_to_serial(
        self, policy, registry, tiny_trace, serial_reference
    ):
        jobs, reference = serial_reference
        spec = f"cluster:2,policy={policy},heartbeat=0.1"
        with JobEngine(backend=spec, chunk_size=1) as engine:
            results = engine.run(jobs, registry.traces)
            assert engine.stats.workers_spawned >= 1
            assert engine.stats.workers_lost == 0
            assert engine.stats.chunks_requeued == 0
        _assert_stored_equal(reference, results)

    def test_cluster_ships_each_trace_once_per_worker(self, registry, tiny_trace):
        jobs = _core_jobs(registry, tiny_trace)
        with JobEngine(backend="cluster:2,heartbeat=0.1", chunk_size=1) as engine:
            engine.run(jobs, registry.traces)
            assert 1 <= engine.stats.traces_shipped <= 2
            engine.run(jobs, registry.traces)
            # Reused workers already hold the trace.
            assert engine.stats.traces_shipped <= 2
            assert engine.stats.pool_reuses == 1

    def test_spec_roundtrip_through_parse_backend(self):
        backend = parse_backend("cluster:3,policy=edd")
        try:
            assert isinstance(backend, ClusterBackend)
            assert backend.spec == "cluster:3,policy=edd"
            assert backend.slots == 3
            assert backend.scheduler.policy.name == "edd"
        finally:
            backend.close()


# -- chaos: SIGKILLed workers never lose work --------------------------------


class TestClusterChaos:
    def test_kill_mid_sweep_requeues_and_completes(
        self, registry, tiny_trace, tmp_path, monkeypatch, serial_reference
    ):
        jobs, reference = serial_reference
        monkeypatch.setenv(CHAOS_ENV_VAR, "kill:2")
        store = ResultStore(tmp_path / "store")
        spec = "cluster:2,heartbeat=0.1,deadline=2,backoff=0.05"
        with JobEngine(backend=spec, chunk_size=1, store=store) as engine:
            results = engine.run(jobs, registry.traces)
            assert engine.stats.workers_lost >= 1
            assert engine.stats.chunks_requeued >= 1
            assert engine.stats.executed == len(jobs)
        _assert_stored_equal(reference, results)

        # Replay against the survivor store: everything was persisted exactly
        # once despite the kill — nothing executes again.
        monkeypatch.delenv(CHAOS_ENV_VAR)
        replay = JobEngine(jobs=1, store=store)
        replayed = replay.run(jobs, registry.traces)
        assert replay.stats.executed == 0
        assert replay.stats.store_hits == len(jobs)
        _assert_stored_equal(reference, replayed)

        # The store holds exactly the serial run's keys, bit-identical.
        serial_store = ResultStore(tmp_path / "serial")
        JobEngine(backend="serial", store=serial_store).run(jobs, registry.traces)
        assert sorted(store.keys()) == sorted(serial_store.keys())

    def test_single_worker_kill_forces_respawn(
        self, registry, tiny_trace, monkeypatch, serial_reference
    ):
        jobs, reference = serial_reference
        monkeypatch.setenv(CHAOS_ENV_VAR, "kill:1")
        spec = "cluster:1,heartbeat=0.1,deadline=2,backoff=0.01"
        with JobEngine(backend=spec, chunk_size=1) as engine:
            results = engine.run(jobs, registry.traces)
            assert engine.stats.workers_lost >= 1
            assert engine.stats.chunks_requeued >= 1
            # Only one slot exists, so finishing the sweep required respawn.
            assert engine.stats.workers_respawned >= 1
        _assert_stored_equal(reference, results)

    def test_chaos_env_parsing(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV_VAR, "kill:3")
        assert _chaos_from_env() == ("kill", 3)
        monkeypatch.setenv(CHAOS_ENV_VAR, "kill")
        assert _chaos_from_env() == ("kill", 1)
        monkeypatch.setenv(CHAOS_ENV_VAR, "")
        assert _chaos_from_env() is None
        monkeypatch.setenv(CHAOS_ENV_VAR, "explode:1")
        with pytest.raises(ValueError):
            _chaos_from_env()
        monkeypatch.setenv(CHAOS_ENV_VAR, "kill:soon")
        with pytest.raises(ValueError):
            _chaos_from_env()


# -- liveness: hung and unspawnable workers ----------------------------------


class TestClusterLiveness:
    def test_hung_worker_is_killed_requeued_and_replaced(
        self, registry, tiny_trace, serial_reference
    ):
        """First spawn hangs after the handshake (no heartbeats); the
        liveness deadline must kill it, requeue its chunk and finish the
        sweep on a respawned real worker."""
        jobs, reference = serial_reference
        spawns = {"n": 0}

        def factory():
            spawns["n"] += 1
            if spawns["n"] == 1:
                return [sys.executable, "-c", HANG_WORKER]
            return local_worker_command()

        backend = ClusterBackend(
            1, command_factory=factory,
            heartbeat=0.05, deadline=0.5, backoff=0.01,
        )
        with JobEngine(backend=backend, chunk_size=1) as engine:
            results = engine.run(jobs, registry.traces)
            assert engine.stats.workers_lost >= 1
            assert engine.stats.chunks_requeued >= 1
            assert engine.stats.workers_respawned >= 1
        _assert_stored_equal(reference, results)

    def test_unspawnable_workers_fail_the_sweep_loudly(
        self, registry, tiny_trace
    ):
        """Every spawn dies before the handshake: after max_respawns
        exponential-backoff attempts the slot fails permanently and drain
        raises instead of polling forever."""
        jobs = _core_jobs(registry, tiny_trace, configs=("Skylake",))
        backend = ClusterBackend(
            1, command_factory=lambda: [sys.executable, "-c", "raise SystemExit(0)"],
            heartbeat=0.05, deadline=1.0, backoff=0.01, max_respawns=2,
        )
        with pytest.raises(BackendError, match="failed permanently"):
            with JobEngine(backend=backend, chunk_size=1) as engine:
                engine.run(jobs, registry.traces)

    def test_elastic_resize_shrinks_idle_workers(self, registry, tiny_trace):
        jobs = _core_jobs(registry, tiny_trace)
        with JobEngine(backend="cluster:2,heartbeat=0.1", chunk_size=1) as engine:
            engine.run(jobs, registry.traces)
            backend = engine.backend
            assert backend.scheduler.live_workers() == 2
            backend.resize(1)
            assert backend.scheduler.live_workers() == 1
            assert backend.describe()["parallelmax"] == 1
            # The shrunk pool still completes a batch.
            results = engine.run(jobs, registry.traces)
            assert len(results) == len(jobs)


# -- policy seam -------------------------------------------------------------


class TestSweepPolicies:
    def test_fifo_picks_lowest_seq(self):
        queued = [_ticket(3), _ticket(1), _ticket(2)]
        assert SweepPolicy().select(queued, []).seq == 1

    def test_ljf_picks_costliest_then_seq(self):
        queued = [_ticket(1, cost=2), _ticket(2, cost=9), _ticket(3, cost=9)]
        assert LJFPolicy().select(queued, []).seq == 2

    def test_edd_orders_by_deadline_deadline_less_last(self):
        queued = [_ticket(1), _ticket(2, deadline=5.0), _ticket(3, deadline=1.0)]
        policy = EDDPolicy()
        assert policy.select(queued, []).seq == 3
        queued = [_ticket(1), _ticket(2, deadline=5.0)]
        assert policy.select(queued, []).seq == 2
        assert policy.select([_ticket(1)], []).seq == 1

    def test_suspend_prefers_top_priority_band(self):
        queued = [_ticket(1, priority=0), _ticket(2, priority=1)]
        assert SuspendPolicy().select(queued, []).seq == 2

    def test_suspend_stalls_while_higher_band_runs(self):
        queued = [_ticket(2, priority=0)]
        running = [_ticket(1, priority=1)]
        assert SuspendPolicy().select(queued, running) is None
        # Once the high-priority chunk finishes, the low band flows again.
        assert SuspendPolicy().select(queued, []).seq == 2

    def test_parse_policy(self):
        assert parse_policy("ljf").name == "ljf"
        instance = EDDPolicy()
        assert parse_policy(instance) is instance
        with pytest.raises(ValueError, match="unknown sweep policy"):
            parse_policy("sjf")

    def test_submit_context_stamps_tickets(self, registry, tiny_trace):
        jobs = _core_jobs(registry, tiny_trace, configs=("Skylake",))
        backend = ClusterBackend(1, heartbeat=0.1)
        try:
            backend.scheduler.update_traces(registry.traces)
            backend.submit_context(priority=3, deadline=1.5)
            backend.submit(0, [(0, jobs[0])], {})
            backend.submit_context()  # reset
            backend.submit(1, [(1, jobs[1])], {})
            first, second = backend.scheduler._queued
            assert (first.priority, first.deadline) == (3, 1.5)
            assert (second.priority, second.deadline) == (0, None)
            assert first.cost > 0
        finally:
            backend.close()


# -- spec grammar ------------------------------------------------------------


class TestClusterSpec:
    def test_defaults_and_canonical_spec(self):
        backend = parse_cluster_spec("cluster")
        try:
            assert backend.slots == 2
            assert backend.spec == "cluster:2"
            assert backend.scheduler.policy.name == "fifo"
        finally:
            backend.close()

    def test_full_option_set(self):
        backend = parse_cluster_spec(
            "cluster:4,policy=suspend,heartbeat=0.5,deadline=3,backoff=0.1,respawns=7"
        )
        try:
            assert backend.slots == 4
            assert backend.spec == "cluster:4,policy=suspend"
            scheduler = backend.scheduler
            assert scheduler.policy.name == "suspend"
            assert scheduler.heartbeat == 0.5
            assert scheduler.deadline == 3.0
            assert scheduler.backoff == 0.1
            assert scheduler.max_respawns == 7
        finally:
            backend.close()

    @pytest.mark.parametrize("spec, message", [
        ("clusterx", "must start with 'cluster'"),
        ("cluster:zero", "not a worker count"),
        ("cluster:0", "count must be >= 1"),
        ("cluster:2,policy", "expected key=value"),
        ("cluster:2,heartbeat=fast", "heartbeat must be a number"),
        ("cluster:2,respawns=many", "respawns must be an integer"),
        ("cluster:2,colour=red", "unknown option"),
        ("cluster:2,policy=sjf", "unknown sweep policy"),
    ])
    def test_bad_specs_are_rejected(self, spec, message):
        with pytest.raises(ValueError, match=message):
            parse_cluster_spec(spec)

    def test_workers_below_one_rejected(self):
        with pytest.raises(ValueError, match="at least one worker"):
            ClusterBackend(0)


# -- repro-cluster CLI -------------------------------------------------------


class TestClusterCLI:
    def test_health_probes_real_workers(self, capsys):
        from repro.cluster.cli import main as cluster_main

        assert cluster_main(["health", "--workers", "1", "--heartbeat", "0.1"]) == 0
        output = capsys.readouterr().out
        assert "worker#0: ok" in output
        assert "1/1 workers ok" in output

    def test_roster_writes_store_keys(self, tmp_path, capsys):
        from repro.cluster.cli import main as cluster_main

        roster_path = tmp_path / "roster.txt"
        assert cluster_main([
            "roster", "--scale", "smoke", "--output", str(roster_path),
        ]) == 0
        assert "keys ->" in capsys.readouterr().out
        keys = [
            line for line in roster_path.read_text().splitlines()
            if line and not line.startswith("#")
        ]
        assert len(keys) == len(set(keys)) > 0
        assert all(key == key.strip() and " " not in key for key in keys)

    def test_plan_prints_policy_order_without_simulating(self, capsys):
        from repro.cluster.cli import main as cluster_main

        assert cluster_main(["plan", "--scale", "smoke", "--policy", "ljf"]) == 0
        output = capsys.readouterr().out
        assert "policy=ljf" in output
        costs = [
            int(line.rsplit("cost=", 1)[1])
            for line in output.splitlines()
            if "cost=" in line
        ]
        assert costs, "plan printed no chunks"
        assert costs == sorted(costs, reverse=True)  # ljf order
