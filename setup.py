"""Package metadata and installation entry points.

``pip install -e .`` makes the ``repro`` package importable without
``PYTHONPATH`` tricks and installs two console scripts:

* ``repro-experiments`` — the ``python -m repro.experiments.runner`` CLI
  (``--scale``, ``--only``, ``--jobs``, ``--store``, ``--trace-dir``,
  ``--trace-format``);
* ``repro-bench`` — the tracked perf-benchmark harness
  (``python -m repro.bench.perf``: ``--quick``, ``--jobs``, ``--output``),
  which writes ``BENCH_simulation.json``;
* ``repro-ingest`` — on-disk trace inspection
  (``python -m repro.workloads.ingest``: lists format, instruction count,
  digest and optional SimPoint probes for each trace in a directory).
"""

from setuptools import find_packages, setup

setup(
    name="repro-hpca21-bug-detection",
    version="0.2.0",
    description=(
        "Reproduction of Barboza et al. (HPCA'21): ML-based detection of "
        "performance bugs in microprocessor designs"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-experiments=repro.experiments.runner:main",
            "repro-bench=repro.bench.perf:main",
            "repro-ingest=repro.workloads.ingest:main",
        ],
    },
)
