"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` also works in fully offline environments where
the ``wheel`` package (required by PEP 517 editable builds on older
setuptools) is unavailable.
"""

from setuptools import setup

setup()
