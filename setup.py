"""Package metadata and installation entry points.

``pip install -e .`` makes the ``repro`` package importable without
``PYTHONPATH`` tricks and installs the console scripts:

* ``repro-experiments`` — the ``python -m repro.experiments.runner`` CLI
  (``--scale``, ``--only``, ``--jobs``, ``--backend``, ``--store``,
  ``--trace-dir``, ``--trace-format``, ``--mixes``);
* ``repro-bench`` — the tracked perf-benchmark harness
  (``python -m repro.bench.perf``: ``--quick``, ``--jobs``, ``--backend``,
  ``--output``), which writes ``BENCH_simulation.json``;
* ``repro-ingest`` — on-disk trace inspection
  (``python -m repro.workloads.ingest``: lists format
  (ChampSim/gem5/k6-style), instruction count, digest and optional SimPoint
  probes for each trace in a directory);
* ``repro-worker`` — the remote execution worker
  (``python -m repro.runtime.worker``): serves simulation chunks over the
  stdio frame protocol for the ``subprocess:`` and ``ssh://`` backends
  (see ``docs/RUNTIME.md``);
* ``repro-store`` — result-store maintenance
  (``python -m repro.runtime.store_cli``: ``merge SRC... DST``, ``info``,
  ``reshard`` between the flat and ``shard=XX/`` layouts, ``gc --keep``
  roster-based pruning);
* ``repro-cluster`` — operate the elastic ``cluster:N`` execution backend
  (``python -m repro.cluster.cli``: ``health`` worker liveness probe,
  ``roster`` store-key keep-set for ``repro-store gc``, ``plan`` dry-run
  of the dispatch policies; see ``docs/RUNTIME.md``);
* ``repro-serve`` — the detection serving daemon
  (``python -m repro.serve.server``): ``train`` persists a detection model
  to a registry file, ``run`` serves it over a socket at interactive
  latency (see ``docs/SERVING.md``);
* ``repro-client`` — the daemon's client
  (``python -m repro.serve.client``: ``probe``, ``ping``, ``stats``,
  ``shutdown``), including the ``--offline`` reference scoring path CI
  diffs the daemon against;
* ``repro-lint`` — static contract analysis
  (``python -m repro.analysis``): checks the three-kernel counter-name
  universe, determinism lints, hook-override eligibility, protocol
  constants and the native ``-Werror`` gate (see ``docs/ANALYSIS.md``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-hpca21-bug-detection",
    version="0.9.0",
    description=(
        "Reproduction of Barboza et al. (HPCA'21): ML-based detection of "
        "performance bugs in microprocessor designs"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    # The native kernel compiles its C source lazily at runtime, so the
    # source must ship inside the installed package.
    package_data={"repro.coresim.native": ["*.c"]},
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-experiments=repro.experiments.runner:main",
            "repro-bench=repro.bench.perf:main",
            "repro-ingest=repro.workloads.ingest:main",
            "repro-worker=repro.runtime.worker:main",
            "repro-store=repro.runtime.store_cli:main",
            "repro-cluster=repro.cluster.cli:main",
            "repro-serve=repro.serve.server:main",
            "repro-client=repro.serve.client:main",
            "repro-lint=repro.analysis.cli:main",
        ],
    },
)
